package cfg

import (
	"go/ast"
	"go/token"
)

// builder holds the under-construction graph. It follows the shape of
// the x/tools/go/cfg builder: a current block that statements append to,
// a stack of break/continue/fallthrough targets, and a per-function
// label map serving goto, labeled break and labeled continue — forward
// references included, since a label block is created at first mention.
type builder struct {
	cfg       *CFG
	mayReturn func(*ast.CallExpr) bool
	current   *Block
	lblocks   map[string]*lblock
	targets   *targets
}

// lblock records the blocks a label can transfer control to.
type lblock struct {
	_goto     *Block
	_break    *Block
	_continue *Block
}

// targets is one frame of the enclosing-construct stack: where an
// unlabeled break, continue or fallthrough goes from here.
type targets struct {
	tail         *targets
	_break       *Block
	_continue    *Block
	_fallthrough *Block
}

func (b *builder) newBlock(kind BlockKind, stmt ast.Stmt) *Block {
	blk := &Block{Index: int32(len(b.cfg.Blocks)), Kind: kind, Stmt: stmt}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *builder) add(n ast.Node) {
	b.current.Nodes = append(b.current.Nodes, n)
}

// edge adds from → to.
func edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
}

// jump ends the current block with an unconditional transfer to target.
func (b *builder) jump(target *Block) {
	edge(b.current, target)
}

// labeledBlock returns the label's record, creating it — and its goto
// target block — on first mention.
func (b *builder) labeledBlock(name string, stmt ast.Stmt) *lblock {
	lb := b.lblocks[name]
	if lb == nil {
		lb = &lblock{_goto: b.newBlock(KindLabel, stmt)}
		b.lblocks[name] = lb
	} else if lb._goto.Stmt == nil {
		lb._goto.Stmt = stmt
	}
	return lb
}

// stmt builds the graph of one statement. label is non-nil when s is the
// body of a labeled statement, so that `break label` / `continue label`
// on an enclosing for/switch/select resolve.
func (b *builder) stmt(s ast.Stmt, label *lblock) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		for _, st := range s.List {
			b.stmt(st, nil)
		}

	case *ast.LabeledStmt:
		lb := b.labeledBlock(s.Label.Name, s)
		b.jump(lb._goto)
		b.current = lb._goto
		b.stmt(s.Stmt, lb)

	case *ast.ReturnStmt:
		b.add(s)
		b.current.Kind = KindReturn
		b.current = b.newBlock(KindUnreachable, s)

	case *ast.BranchStmt:
		b.branchStmt(s)

	case *ast.ExprStmt:
		b.add(s)
		if call, ok := unparen(s.X).(*ast.CallExpr); ok && !b.mayReturn(call) {
			b.current.Kind = KindPanic
			b.current = b.newBlock(KindUnreachable, s)
		}

	case *ast.IfStmt:
		b.ifStmt(s)

	case *ast.ForStmt:
		b.forStmt(s, label)

	case *ast.RangeStmt:
		b.rangeStmt(s, label)

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init, nil)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.switchBody(s, s.Body, label, nil)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init, nil)
		}
		if s.Assign != nil {
			b.add(s.Assign)
		}
		b.switchBody(s, s.Body, label, nil)

	case *ast.SelectStmt:
		b.selectStmt(s, label)

	case *ast.EmptyStmt:
		// no flow, no node

	default:
		// DeclStmt, AssignStmt, IncDecStmt, SendStmt, GoStmt, DeferStmt,
		// BadStmt: straight-line nodes. defer and go do not transfer
		// control here; their payloads are analyzed by their consumers.
		b.add(s)
	}
}

func (b *builder) branchStmt(s *ast.BranchStmt) {
	var block *Block
	switch s.Tok {
	case token.BREAK:
		if s.Label != nil {
			if lb := b.lblocks[s.Label.Name]; lb != nil {
				block = lb._break
			}
		} else {
			for t := b.targets; t != nil && block == nil; t = t.tail {
				block = t._break
			}
		}
	case token.CONTINUE:
		if s.Label != nil {
			if lb := b.lblocks[s.Label.Name]; lb != nil {
				block = lb._continue
			}
		} else {
			for t := b.targets; t != nil && block == nil; t = t.tail {
				block = t._continue
			}
		}
	case token.FALLTHROUGH:
		for t := b.targets; t != nil && block == nil; t = t.tail {
			block = t._fallthrough
		}
	case token.GOTO:
		if s.Label != nil {
			block = b.labeledBlock(s.Label.Name, nil)._goto
		}
	}
	b.add(s)
	if block != nil {
		b.jump(block)
	}
	b.current = b.newBlock(KindUnreachable, s)
}

func (b *builder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.stmt(s.Init, nil)
	}
	b.add(s.Cond)
	cond := b.current
	then := b.newBlock(KindIfThen, s)
	edge(cond, then)
	done := b.newBlock(KindIfDone, s)
	if s.Else != nil {
		els := b.newBlock(KindIfElse, s)
		edge(cond, els)
		b.current = els
		b.stmt(s.Else, nil)
		b.jump(done)
	} else {
		edge(cond, done)
	}
	b.current = then
	b.stmt(s.Body, nil)
	b.jump(done)
	b.current = done
}

func (b *builder) forStmt(s *ast.ForStmt, label *lblock) {
	//	...init...
	//	loop: ...cond...           (for {} has no loop block: body loops to itself)
	//	body: ...body... → post
	//	post: ...post... → loop
	//	done:
	if s.Init != nil {
		b.stmt(s.Init, nil)
	}
	loop := b.newBlock(KindForLoop, s)
	b.jump(loop)
	b.current = loop
	if s.Cond != nil {
		b.add(s.Cond)
	}
	body := b.newBlock(KindForBody, s)
	done := b.newBlock(KindForDone, s)
	edge(loop, body)
	if s.Cond != nil {
		edge(loop, done)
	}
	post := loop
	if s.Post != nil {
		post = b.newBlock(KindForPost, s)
	}
	if label != nil {
		label._break = done
		label._continue = post
	}
	b.targets = &targets{tail: b.targets, _break: done, _continue: post}
	b.current = body
	b.stmt(s.Body, nil)
	b.jump(post)
	b.targets = b.targets.tail
	if s.Post != nil {
		b.current = post
		b.stmt(s.Post, nil)
		b.jump(loop)
	}
	b.current = done
}

func (b *builder) rangeStmt(s *ast.RangeStmt, label *lblock) {
	// The range statement itself is the head node: it covers the key /
	// value assignment and the per-iteration test.
	head := b.newBlock(KindRangeLoop, s)
	b.jump(head)
	b.current = head
	b.add(s)
	body := b.newBlock(KindRangeBody, s)
	done := b.newBlock(KindRangeDone, s)
	edge(head, body)
	edge(head, done)
	if label != nil {
		label._break = done
		label._continue = head
	}
	b.targets = &targets{tail: b.targets, _break: done, _continue: head}
	b.current = body
	b.stmt(s.Body, nil)
	b.jump(head)
	b.targets = b.targets.tail
	b.current = done
}

// switchBody builds the clauses of a switch or type switch: the head
// (current) block branches to every case body, plus to done when there
// is no default clause; fallthrough chains case bodies in source order.
func (b *builder) switchBody(sw ast.Stmt, body *ast.BlockStmt, label *lblock, _ *Block) {
	head := b.current
	done := b.newBlock(KindSwitchDone, sw)
	if label != nil {
		label._break = done
	}
	var clauses []*ast.CaseClause
	for _, c := range body.List {
		clauses = append(clauses, c.(*ast.CaseClause))
	}
	bodies := make([]*Block, len(clauses))
	for i, cc := range clauses {
		bodies[i] = b.newBlock(KindSwitchCaseBody, cc)
	}
	hasDefault := false
	for i, cc := range clauses {
		edge(head, bodies[i])
		if cc.List == nil {
			hasDefault = true
		}
		b.current = bodies[i]
		for _, e := range cc.List {
			b.add(e)
		}
		var ft *Block
		if i+1 < len(bodies) {
			ft = bodies[i+1]
		}
		b.targets = &targets{tail: b.targets, _break: done, _fallthrough: ft}
		for _, st := range cc.Body {
			b.stmt(st, nil)
		}
		b.targets = b.targets.tail
		b.jump(done)
	}
	if !hasDefault {
		edge(head, done)
	}
	b.current = done
}

func (b *builder) selectStmt(s *ast.SelectStmt, label *lblock) {
	head := b.current
	done := b.newBlock(KindSelectDone, s)
	if label != nil {
		label._break = done
	}
	hasDefault := false
	for _, c := range s.Body.List {
		cc := c.(*ast.CommClause)
		if cc.Comm == nil {
			hasDefault = true
		}
		body := b.newBlock(KindSelectCaseBody, cc)
		edge(head, body)
		b.current = body
		if cc.Comm != nil {
			b.stmt(cc.Comm, nil)
		}
		b.targets = &targets{tail: b.targets, _break: done}
		for _, st := range cc.Body {
			b.stmt(st, nil)
		}
		b.targets = b.targets.tail
		b.jump(done)
	}
	if len(s.Body.List) == 0 {
		// select{} blocks forever: no case edges were added, so classify
		// the head as a non-returning terminator — like a call that
		// cannot return — so Exits() does not mistake it for fall-off.
		head.Kind = KindPanic
	}
	_ = hasDefault // a default case needs no extra edge: its body block covers it
	b.current = done
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
