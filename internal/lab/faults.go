package lab

import (
	"physched/internal/cluster"
	"physched/internal/job"
	"physched/internal/sched"
)

// faultSeedStream is the SplitMix64 branch reserved for the fault RNG:
// each run derives its fault randomness as DeriveSeed(Seed, faultSeedStream),
// a subtree disjoint from the engine seed (Seed) and the workload seed
// (Seed+1). Faults therefore never shift workload draws — a scenario with
// FaultModel{} is bit-identical to one without the field — and fault
// sequences are reproducible per (scenario, seed) independent of grid
// shape or worker count.
const faultSeedStream = 0xfa

// requeuer adapts any sched.Policy to a cluster with node churn. It owns
// the subjobs failing nodes lost and re-dispatches each on the first node
// observed idle — ahead of the policy's own queue on arrivals (crashed
// work is the oldest work in the system), behind it on completions (the
// policy reacts to SubjobDone first; whatever capacity it leaves idle
// goes to lost work). Policies implementing sched.NodeStateObserver take
// the lost work themselves and the requeuer stays out of their way.
type requeuer struct {
	c      *cluster.Cluster
	policy sched.Policy
	lost   []*job.Subjob // FIFO of subjobs awaiting re-execution
}

func (q *requeuer) jobArrived(j *job.Job) {
	q.drain()
	q.policy.JobArrived(j)
}

func (q *requeuer) subjobDone(n *cluster.Node, sj *job.Subjob) {
	q.policy.SubjobDone(n, sj)
	q.drain()
}

func (q *requeuer) nodeDown(n *cluster.Node, lost *job.Subjob) {
	if obs, ok := q.policy.(sched.NodeStateObserver); ok {
		obs.NodeDown(n, lost)
		return
	}
	if lost != nil {
		q.lost = append(q.lost, lost)
	}
	q.drain() // another node may be idle right now
}

func (q *requeuer) nodeUp(n *cluster.Node) {
	if obs, ok := q.policy.(sched.NodeStateObserver); ok {
		obs.NodeUp(n)
		return
	}
	q.drain()
}

// drain dispatches queued lost subjobs while idle nodes exist.
func (q *requeuer) drain() {
	for len(q.lost) > 0 {
		n := q.c.FirstIdle()
		if n == nil {
			return
		}
		sj := q.lost[0]
		copy(q.lost, q.lost[1:])
		q.lost[len(q.lost)-1] = nil
		q.lost = q.lost[:len(q.lost)-1]
		q.c.Dispatch(n, sj)
	}
}
