package physched_test

import (
	"fmt"

	"physched"
)

// ExampleRun simulates the paper's cluster under the out-of-order policy
// at a moderate load. Simulations are deterministic for a fixed seed.
func ExampleRun() {
	params := physched.PaperCalibrated()
	res := physched.Run(physched.Scenario{
		Params:      params,
		NewPolicy:   physched.OutOfOrder,
		Load:        1.0, // jobs per hour
		Seed:        1,
		WarmupJobs:  50,
		MeasureJobs: 200,
	})
	fmt.Printf("overloaded: %v\n", res.Overloaded)
	fmt.Printf("speedup above farm: %v\n", res.AvgSpeedup > 5)
	fmt.Printf("waiting under an hour: %v\n", res.AvgWaiting < physched.Hour)
	// Output:
	// overloaded: false
	// speedup above farm: true
	// waiting under an hour: true
}

// ExampleParams_derived shows the calibrated preset reproducing the
// paper's derived reference quantities.
func ExampleParams_derived() {
	p := physched.PaperCalibrated()
	fmt.Printf("reference job: %.0f s\n", p.SingleNodeNoCacheTime())
	fmt.Printf("theoretical max load: %.2f jobs/hour\n", p.MaxTheoreticalLoad())
	fmt.Printf("caching gain: %.2f\n", p.CachingGain())
	fmt.Printf("farm max load: %.2f jobs/hour\n", p.FarmMaxLoad())
	// Output:
	// reference job: 32000 s
	// theoretical max load: 3.46 jobs/hour
	// caching gain: 3.08
	// farm max load: 1.12 jobs/hour
}

// ExampleSustainableLoad finds the saturation point of the processing farm
// on a reduced cluster, matching the analytic bound.
func ExampleSustainableLoad() {
	p := physched.PaperCalibrated()
	p.Nodes = 4
	p.MeanJobEvents = 2_000
	p.DataspaceBytes = 200 * physched.GB
	p.CacheBytes = 10 * physched.GB

	farmMax := p.FarmMaxLoad()
	loads := []float64{0.5 * farmMax, 0.9 * farmMax, 1.5 * farmMax}
	got := physched.SustainableLoad(physched.Scenario{
		Params:      p,
		NewPolicy:   physched.Farm,
		Seed:        1,
		WarmupJobs:  30,
		MeasureJobs: 150,
	}, loads)
	fmt.Printf("farm sustains 0.9×max: %v\n", got == loads[1])
	// Output:
	// farm sustains 0.9×max: true
}
