package lab

import (
	"context"
	"errors"
	"runtime"
	"sync"
)

// ErrPoolClosed is returned by Pool.Run once the pool has been closed.
var ErrPoolClosed = errors.New("lab: pool is closed")

// Pool executes index-addressed tasks over a bounded set of workers. One
// long-lived Pool may serve many concurrent Run calls — every grid a
// server executes, for example — and its worker bound then caps the total
// number of simulations in flight process-wide. Tasks from concurrent Run
// calls are interleaved fairly: workers pick round-robin across the
// active submissions, so a large grid cannot starve a small one.
//
// Tasks receive their index and write their own results; the pool
// guarantees nothing about execution order, which is why every lab task
// must be a pure function of its index (see the package comment).
type Pool struct {
	workers int
	wg      sync.WaitGroup

	mu     sync.Mutex
	cond   *sync.Cond
	subs   []*submission // submissions with tasks still to hand out
	next   int           // round-robin cursor into subs
	closed bool
	busy   int        // workers currently inside a task
	done   uint64     // tasks completed over the pool's lifetime
	hooks  *PoolHooks // nil unless SetHooks installed observation hooks
}

// PoolHooks observe per-task timing on a pool: how long each task sat
// queued before a worker picked it up, and how long it ran. The clock is
// injected — the pool itself never reads wall time, keeping internal/lab
// inside the determinism boundary (the walltime analyzer enforces this;
// a service installs hooks fed from its own audited clock seam). All
// three fields must be set; hook calls happen outside the pool mutex on
// the worker's hot path and must not block or allocate.
type PoolHooks struct {
	// Now returns the current time in nanoseconds (any fixed epoch).
	Now func() int64
	// Wait receives each task's queue wait: pickup time minus submit time.
	Wait func(ns int64)
	// Run receives each task's execution duration.
	Run func(ns int64)
}

// SetHooks installs (or, with nil, removes) timing hooks. Tasks already
// queued were not timestamped at submission, so their queue wait reads
// as pickup minus the hook installation instant at worst — install hooks
// before submitting work when exact waits matter.
func (p *Pool) SetHooks(h *PoolHooks) {
	if h != nil && (h.Now == nil || h.Wait == nil || h.Run == nil) {
		panic("lab: PoolHooks requires Now, Wait and Run")
	}
	p.mu.Lock()
	p.hooks = h
	p.mu.Unlock()
}

// PoolStats is a point-in-time snapshot of a pool's load — the counter
// layer a service /metrics endpoint reads. Busy/Workers is the
// utilization gauge; TasksDone is monotonic, so cells-per-second is a
// rate over it.
type PoolStats struct {
	Workers   int    // worker bound
	Busy      int    // workers currently executing a task
	TasksDone uint64 // tasks completed since NewPool
}

// Stats snapshots the pool's counters.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return PoolStats{Workers: p.workers, Busy: p.busy, TasksDone: p.done}
}

// submission is one Run call's task set. Guarded by the pool's mutex.
type submission struct {
	task       func(int)
	n          int   // total tasks
	nextIdx    int   // next index to hand out
	inflight   int   // tasks currently running
	enqueuedNs int64 // submit timestamp from hooks.Now; 0 when hooks were off
	cancelled  bool
	done       chan struct{} // closed when no tasks remain pending or running
	doneClosed bool
}

// NewPool starts a pool of workers goroutines; ≤0 means
// runtime.GOMAXPROCS(0). Close releases them.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{workers: workers}
	p.cond = sync.NewCond(&p.mu)
	p.wg.Add(workers)
	for w := 0; w < workers; w++ {
		//physched:spawnok workers exit when Close sets the closed flag and broadcasts; Close joins them via wg.Wait
		go p.worker()
	}
	return p
}

// Workers reports the pool's worker bound.
func (p *Pool) Workers() int { return p.workers }

// Run executes task(0..n-1) on the pool and blocks until all started
// tasks finished. When ctx is cancelled, tasks not yet started are
// skipped — a simulation run is not interruptible midway — and ctx.Err()
// is returned once in-flight tasks complete; completed indices keep
// their results. Concurrent Run calls share the pool's worker bound.
func (p *Pool) Run(ctx context.Context, n int, task func(int)) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if n <= 0 {
		return nil
	}
	sub := &submission{task: task, n: n, done: make(chan struct{})}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrPoolClosed
	}
	if p.hooks != nil {
		sub.enqueuedNs = p.hooks.Now()
	}
	p.subs = append(p.subs, sub)
	p.cond.Broadcast()
	p.mu.Unlock()

	select {
	case <-sub.done:
		return nil
	case <-ctx.Done():
		p.mu.Lock()
		sub.cancelled = true
		p.remove(sub)
		p.finishIfDone(sub)
		p.mu.Unlock()
		<-sub.done // started tasks run to completion
		return ctx.Err()
	}
}

// Close marks the pool closed and waits for the workers to exit. Tasks
// already submitted are drained first; Run calls after Close fail with
// ErrPoolClosed.
func (p *Pool) Close() {
	p.mu.Lock()
	p.closed = true
	p.cond.Broadcast()
	p.mu.Unlock()
	p.wg.Wait()
}

func (p *Pool) worker() {
	defer p.wg.Done()
	p.mu.Lock()
	for {
		sub, i := p.take()
		for sub == nil {
			if p.closed {
				p.mu.Unlock()
				return
			}
			p.cond.Wait()
			sub, i = p.take()
		}
		p.busy++
		hooks, enq := p.hooks, sub.enqueuedNs
		p.mu.Unlock()
		if hooks != nil && enq != 0 {
			runHooked(sub.task, i, enq, hooks)
		} else {
			sub.task(i)
		}
		p.mu.Lock()
		p.busy--
		p.done++
		sub.inflight--
		p.finishIfDone(sub)
	}
}

// runHooked runs one task bracketed by timing observations. It sits on
// the worker hot path — one call per simulated cell — so it must not
// allocate: the hook closures are shared, not built per task.
//
//physched:hotpath
func runHooked(task func(int), i int, enqueuedNs int64, h *PoolHooks) {
	start := h.Now()
	h.Wait(start - enqueuedNs)
	task(i)
	h.Run(h.Now() - start)
}

// take pops the next task, round-robin across active submissions, and
// drops exhausted submissions from the rotation.
//
//physched:locked p.mu — take mutates the shared rotation state
func (p *Pool) take() (*submission, int) {
	for len(p.subs) > 0 {
		if p.next >= len(p.subs) {
			p.next = 0
		}
		sub := p.subs[p.next]
		if sub.cancelled || sub.nextIdx >= sub.n {
			p.subs = append(p.subs[:p.next], p.subs[p.next+1:]...)
			continue
		}
		i := sub.nextIdx
		sub.nextIdx++
		sub.inflight++
		if sub.nextIdx >= sub.n {
			p.subs = append(p.subs[:p.next], p.subs[p.next+1:]...)
		} else {
			p.next++
		}
		return sub, i
	}
	return nil, 0
}

// remove takes sub out of the rotation.
//
//physched:locked p.mu — remove rewrites the shared subs slice
func (p *Pool) remove(sub *submission) {
	for i, s := range p.subs {
		if s == sub {
			p.subs = append(p.subs[:i], p.subs[i+1:]...)
			return
		}
	}
}

// finishIfDone closes sub.done when no tasks remain pending or running.
//
//physched:locked p.mu — the doneClosed/inflight check must be atomic with the rotation
func (p *Pool) finishIfDone(sub *submission) {
	if sub.inflight == 0 && (sub.cancelled || sub.nextIdx >= sub.n) && !sub.doneClosed {
		sub.doneClosed = true
		close(sub.done)
	}
}

// runSerial executes task(0..n-1) inline with cancellation between tasks
// — the worker-free path grid execution takes for serial runs.
func runSerial(ctx context.Context, n int, task func(int)) error {
	if ctx == nil {
		ctx = context.Background()
	}
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		task(i)
	}
	return nil
}
