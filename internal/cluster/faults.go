// Node dynamics: real PC farms lose and regain nodes constantly, while
// the paper's evaluation assumes a cluster that never fails. This file
// adds churn as first-class simulation events — stochastic failures
// (homogeneous Poisson per node, optionally day/night-modulated via
// Lewis–Shedler thinning, the same machinery internal/workload uses for
// inhomogeneous arrivals), exponential repairs, permanent decommissions
// and late node joins — plus the cluster-side mechanics every model
// variant shares: killing the subjob running on a failing node, wasted
// work accounting, and the optional loss of the node's disk cache.
//
// Scheduling policies observe churn through the interfaces they already
// use: a down node reports Idle() == false and Running() == nil, so idle
// scans skip it and preemption logic never touches it. Lost subjobs are
// handed to the Cluster.NodeDown callback; internal/lab requeues them on
// the next idle node unless the policy takes ownership itself (see
// sched.NodeStateObserver).
package cluster

import (
	"fmt"
	"math"
	"math/rand"

	"physched/internal/cache"
	"physched/internal/dataspace"
	"physched/internal/job"
	"physched/internal/model"
	"physched/internal/stats"
	"physched/internal/trace"
)

// Default fault-model time constants, in hours. They are also the values
// spec canonicalisation fills in, so a spec naming them explicitly hashes
// identically to one leaving them to default.
const (
	// DefaultRepairHours is the mean repair time when RepairHours is zero.
	DefaultRepairHours = 4
	// DefaultJoinHours is the mean time until a spare node joins when
	// JoinHours is zero.
	DefaultJoinHours = 24
)

// FaultModel configures node churn. The zero value disables it entirely;
// a model with MTBFHours > 0 fails nodes stochastically, and SpareNodes
// adds initially-down nodes that join the cluster late. All randomness
// comes from the *rand.Rand passed to InstallFaults, never from the
// engine's source, so enabling faults does not shift workload draws.
type FaultModel struct {
	// MTBFHours is each up node's mean time between failures, in hours of
	// simulated time. Zero disables failures (spares may still join).
	MTBFHours float64

	// RepairHours is the mean repair time, exponentially distributed.
	// Zero means DefaultRepairHours.
	RepairHours float64

	// DayNightSwing in [0,1) modulates the failure rate over a 24-hour
	// cycle — rate(t) = (1/MTBF)·(1 + swing·sin(2πt/day)) — realised by
	// thinning, mirroring workload.DayNight. Overnight batch windows and
	// daytime operator activity make real failure processes periodic.
	DayNightSwing float64

	// CacheLoss wipes the failing node's disk cache: the failure takes
	// the disk (or its filesystem) with it. When false the cache survives
	// the outage, as after a plain reboot.
	CacheLoss bool

	// DecommissionProb is the probability, in [0,1], that a failure is
	// permanent: the node never repairs and leaves the cluster for good.
	DecommissionProb float64

	// SpareNodes is the number of extra nodes beyond Params.Nodes that
	// start down and join the running cluster later.
	SpareNodes int

	// JoinHours is the mean time until a spare node joins, exponentially
	// distributed. Zero means DefaultJoinHours.
	JoinHours float64
}

// Enabled reports whether the model introduces any node dynamics.
func (m FaultModel) Enabled() bool { return m.MTBFHours > 0 || m.SpareNodes > 0 }

// WithDefaults returns the model with the named defaults filled in. A
// disabled model stays zero.
func (m FaultModel) WithDefaults() FaultModel {
	if m.MTBFHours > 0 && m.RepairHours == 0 {
		m.RepairHours = DefaultRepairHours
	}
	if m.SpareNodes > 0 && m.JoinHours == 0 {
		m.JoinHours = DefaultJoinHours
	}
	return m
}

// Validate reports the first out-of-range field.
func (m FaultModel) Validate() error {
	switch {
	case m.MTBFHours < 0:
		return fmt.Errorf("cluster: MTBFHours must be non-negative, got %v", m.MTBFHours)
	case m.RepairHours < 0:
		return fmt.Errorf("cluster: RepairHours must be non-negative, got %v", m.RepairHours)
	case m.DayNightSwing < 0 || m.DayNightSwing >= 1:
		return fmt.Errorf("cluster: DayNightSwing must be in [0,1), got %v", m.DayNightSwing)
	case m.DecommissionProb < 0 || m.DecommissionProb > 1:
		return fmt.Errorf("cluster: DecommissionProb must be in [0,1], got %v", m.DecommissionProb)
	case m.SpareNodes < 0:
		return fmt.Errorf("cluster: SpareNodes must be non-negative, got %d", m.SpareNodes)
	case m.JoinHours < 0:
		return fmt.Errorf("cluster: JoinHours must be non-negative, got %v", m.JoinHours)
	// Inert non-zero blocks are rejected rather than silently ignored: a
	// spec with repair parameters but no failure rate almost certainly
	// forgot MTBFHours, and accepting it would also give two identical
	// simulations different content hashes.
	case m.DayNightSwing > 0 && m.MTBFHours == 0:
		return fmt.Errorf("cluster: DayNightSwing needs MTBFHours > 0")
	case m.MTBFHours == 0 && (m.RepairHours != 0 || m.CacheLoss || m.DecommissionProb != 0):
		return fmt.Errorf("cluster: RepairHours, CacheLoss and DecommissionProb need MTBFHours > 0")
	case m.SpareNodes == 0 && m.JoinHours != 0:
		return fmt.Errorf("cluster: JoinHours needs SpareNodes > 0")
	}
	return nil
}

// InstallFaults schedules the model's node dynamics on the cluster's
// engine: one failure process per node plus the spare-node joins. Call it
// after New and before the simulation starts. All draws come from rng in
// event order, so runs are deterministic per (scenario, seed).
func InstallFaults(c *Cluster, m FaultModel, rng *rand.Rand) error {
	if err := m.Validate(); err != nil {
		return err
	}
	if !m.Enabled() {
		return nil
	}
	m = m.WithDefaults()
	fi := &faultInjector{c: c, m: m, rng: rng}
	for _, n := range c.nodes {
		fi.scheduleFailure(n)
	}
	for i := 0; i < m.SpareNodes; i++ {
		n := c.AddNode()
		d := stats.Exponential(rng, m.JoinHours*model.Hour)
		c.eng.After(d, func() { fi.join(n) })
	}
	return nil
}

// faultInjector drives one FaultModel on one cluster.
type faultInjector struct {
	c   *Cluster
	m   FaultModel
	rng *rand.Rand
}

// scheduleFailure arms the next failure of an up node. Exactly one
// failure is armed per up-period, so a failure can never fire on a node
// that is already down.
func (fi *faultInjector) scheduleFailure(n *Node) {
	if fi.m.MTBFHours <= 0 {
		return
	}
	fi.c.eng.After(fi.nextFailureDelay(), func() { fi.fail(n) })
}

// nextFailureDelay draws the time to the node's next failure: exponential
// with mean MTBF, or — with DayNightSwing set — the next arrival of an
// inhomogeneous Poisson process thinned against the peak rate, the same
// stats machinery workload.NewInhomogeneous uses for job arrivals.
func (fi *faultInjector) nextFailureDelay() float64 {
	mean := fi.m.MTBFHours * model.Hour
	if fi.m.DayNightSwing == 0 {
		return stats.Exponential(fi.rng, mean)
	}
	rate := 1 / mean
	now := fi.c.eng.Now()
	proc := stats.NewThinnedPoisson(fi.rng, func(t float64) float64 {
		return rate * (1 + fi.m.DayNightSwing*math.Sin(2*math.Pi*t/model.Day))
	}, rate*(1+fi.m.DayNightSwing), now)
	return proc.Next() - now
}

func (fi *faultInjector) fail(n *Node) {
	if !n.up {
		return // decommissioned concurrently; nothing to fail
	}
	if fi.m.DecommissionProb > 0 && fi.rng.Float64() < fi.m.DecommissionProb {
		fi.c.DecommissionNode(n) // permanent: no repair is ever scheduled
		return
	}
	fi.c.FailNode(n, fi.m.CacheLoss)
	d := stats.Exponential(fi.rng, fi.m.RepairHours*model.Hour)
	fi.c.eng.After(d, func() { fi.repair(n) })
}

func (fi *faultInjector) repair(n *Node) {
	fi.c.RepairNode(n)
	fi.scheduleFailure(n)
}

func (fi *faultInjector) join(n *Node) {
	fi.c.JoinNode(n)
	fi.scheduleFailure(n)
}

// FailNode takes an up node down at the current instant. The subjob
// running on it, if any, is killed: the computation it performed since
// dispatch is wasted (crash results are lost with the node's memory) and
// a subjob covering its full original range is returned for
// re-execution, also passed to the NodeDown callback. Data the killed
// subjob had already streamed stays accounted — and, unless wipeCache,
// stays cached — because it physically moved before the crash.
// Failing a down node panics: it indicates a broken failure process.
func (c *Cluster) FailNode(n *Node, wipeCache bool) *job.Subjob {
	if !n.up {
		panic(fmt.Sprintf("cluster: failing down node %d", n.ID))
	}
	var lost *job.Subjob
	if n.run != nil {
		lost = c.killRunning(n)
	}
	n.up = false
	c.stats.Failures++
	c.Tracer.Add(trace.Event{Time: c.eng.Now(), Kind: trace.NodeDown, Node: n.ID})
	if wipeCache {
		n.Cache.Clear()
	}
	if c.NodeDown != nil {
		c.NodeDown(n, lost)
	}
	return lost
}

// killRunning tears down the subjob running on n without crediting any of
// its work: unlike Preempt, which completes the events processed so far,
// a crash loses them. The returned subjob covers the original range.
func (c *Cluster) killRunning(n *Node) *job.Subjob {
	r := n.run
	r.ev.Cancel()
	p := r.pieces[r.pieceIdx]
	elapsed := c.eng.Now() - r.pieceStart
	k := int64(elapsed/p.PerEvent + 1e-9)
	if k > p.Range.Len() {
		k = p.Range.Len()
	}
	done := dataspace.Iv(p.Range.Start, p.Range.Start+k)
	// The prefix of the current piece was fetched before the crash:
	// account its data path (balancing the tape stream opened by
	// startPiece) even though the computation is discarded.
	c.accountSpan(n, p, done)
	wasted := done.Len()
	for i := 0; i < r.pieceIdx; i++ {
		wasted += r.pieces[i].Range.Len()
	}
	sj := r.Subjob
	j := sj.Job
	n.run = nil
	c.releaseRunning(r)
	j.Running--
	c.stats.EventsLost += wasted
	c.stats.Reexecutions++
	c.Tracer.Add(trace.Event{Time: c.eng.Now(), Kind: trace.SubjobLost, JobID: j.ID, Node: n.ID, Events: wasted})
	return c.arena.CloneSubjob(sj, sj.Range)
}

// DecommissionNode fails an up node permanently: it is marked
// decommissioned before NodeDown fires — observers distinguish the two
// via Node.Decommissioned — and its cache is wiped unconditionally,
// since a disk that will never power on again must stop attracting
// cache-affine placements and remote reads. The lost subjob, if any, is
// returned like FailNode's.
func (c *Cluster) DecommissionNode(n *Node) *job.Subjob {
	n.decommissioned = true
	c.stats.Decommissions++
	return c.FailNode(n, true)
}

// RepairNode brings a down node back up. Its cache holds whatever
// survived the failure. Repairing an up node panics.
func (c *Cluster) RepairNode(n *Node) {
	c.bringUp(n, "repair")
	c.stats.Repairs++
	c.Tracer.Add(trace.Event{Time: c.eng.Now(), Kind: trace.NodeUp, Node: n.ID})
	if c.NodeUp != nil {
		c.NodeUp(n)
	}
}

// JoinNode brings an initially-down spare node (see AddNode) into
// service for the first time.
func (c *Cluster) JoinNode(n *Node) {
	c.bringUp(n, "join")
	c.stats.NodeJoins++
	c.Tracer.Add(trace.Event{Time: c.eng.Now(), Kind: trace.NodeUp, Node: n.ID})
	if c.NodeUp != nil {
		c.NodeUp(n)
	}
}

func (c *Cluster) bringUp(n *Node, op string) {
	if n.up {
		panic(fmt.Sprintf("cluster: %s of up node %d", op, n.ID))
	}
	if n.decommissioned {
		panic(fmt.Sprintf("cluster: %s of decommissioned node %d", op, n.ID))
	}
	n.up = true
}

// AddNode appends a new, initially-down node with an empty cache — the
// spare-capacity form of late join. The node becomes schedulable once
// JoinNode brings it up.
func (c *Cluster) AddNode() *Node {
	capEvents := c.params.CacheEvents()
	if !c.cfg.Caching {
		capEvents = 0
	}
	n := &Node{ID: len(c.nodes), Cache: c.index.Add(capEvents, c.cfg.Eviction)}
	c.setNodeTimes(n)
	c.nodes = append(c.nodes, n)
	c.counts = append(c.counts, cache.CountMap{})
	return n
}

// UpCount returns the number of up nodes.
func (c *Cluster) UpCount() int {
	k := 0
	for _, n := range c.nodes {
		if n.up {
			k++
		}
	}
	return k
}
