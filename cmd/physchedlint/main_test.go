package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestSabotagedFixtureExitsNonzero is the end-to-end contract of the
// multichecker: a package violating the contracts makes it exit 1 and
// print each finding.
func TestSabotagedFixtureExitsNonzero(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"physched/internal/analysis/testdata/src/sabotage"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code %d on sabotaged package, want 1\nstdout:\n%s\nstderr:\n%s",
			code, stdout.String(), stderr.String())
	}
	for _, needle := range []string{"hotalloc", "physcheddirective", "sabotage.go"} {
		if !strings.Contains(stdout.String(), needle) {
			t.Errorf("findings do not mention %q:\n%s", needle, stdout.String())
		}
	}
	if !strings.Contains(stderr.String(), "finding(s)") {
		t.Errorf("stderr missing the findings summary: %q", stderr.String())
	}
}

// TestListFlag: -list prints one line per analyzer and exits 0.
func TestListFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-list exit code %d, stderr: %s", code, stderr.String())
	}
	for _, name := range []string{"detrand", "walltime", "maporder", "hotalloc", "wirecanon", "physcheddirective"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, stdout.String())
		}
	}
}

// TestBadPatternExits2: loader errors are exit code 2, not a silent pass.
func TestBadPatternExits2(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"physched/does/not/exist"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit code %d on unknown package, want 2\nstderr: %s", code, stderr.String())
	}
}
