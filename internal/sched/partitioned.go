package sched

import (
	"physched/internal/cluster"
	"physched/internal/dataspace"
	"physched/internal/job"
)

// Partitioned is a static data-partitioning policy, the classical
// alternative to the paper's dynamic caching that its related work
// discusses (overlay striping / data partitioning, Triantafillou &
// Faloutsos [16]): the dataspace is cut into one contiguous partition per
// node, each node owns its partition and caches only data from it, and
// every job is split along partition boundaries with each piece queued on
// its owner node.
//
// Static ownership removes all placement decisions — no preemption, no
// stealing — at the price of load imbalance: the hot regions of the
// workload hammer the two owner nodes while others idle. Comparing it with
// CacheOriented and OutOfOrder quantifies what the paper's dynamic
// policies buy.
type Partitioned struct {
	base
	bounds []int64 // partition boundaries, len Nodes+1
	nodeQ  []subjobDeque
}

// NewPartitioned returns the static-partitioning policy.
func NewPartitioned() *Partitioned { return &Partitioned{} }

func (*Partitioned) Name() string { return "partitioned" }

func (*Partitioned) ClusterConfig() cluster.Config {
	return cluster.Config{Caching: true}
}

func (p *Partitioned) Attach(c *cluster.Cluster) {
	p.base.Attach(c)
	// Partition over the full roster, including spare nodes that join
	// late (cluster.FaultModel): a spare's slice queues until it arrives.
	n := len(c.Nodes())
	total := p.params.TotalEvents()
	p.bounds = make([]int64, n+1)
	for i := 0; i <= n; i++ {
		p.bounds[i] = total * int64(i) / int64(n)
	}
	p.nodeQ = make([]subjobDeque, n)
}

// owner returns the node owning event index e.
func (p *Partitioned) owner(e int64) int {
	for i := 1; i < len(p.bounds); i++ {
		if e < p.bounds[i] {
			return i - 1
		}
	}
	return len(p.bounds) - 2
}

func (p *Partitioned) JobArrived(j *job.Job) {
	pos := j.Range.Start
	for pos < j.Range.End {
		o := p.owner(pos)
		end := p.bounds[o+1]
		if end > j.Range.End {
			end = j.Range.End
		}
		sub := p.arena().NewSubjob(j, dataspace.Iv(pos, end), o)
		p.enqueue(o, sub)
		pos = end
	}
}

func (p *Partitioned) enqueue(node int, sub *job.Subjob) {
	// A decommissioned owner never returns; its partition's work moves
	// to the live node with the shortest queue. A merely-down owner
	// keeps its queue — the backlog resumes on repair.
	if p.c.Node(node).Decommissioned() {
		live := p.fallback()
		if live == nil {
			p.nodeQ[node].PushBack(sub) // whole cluster gone; park it
			return
		}
		node = live.ID
		sub.Origin = node
	}
	n := p.c.Node(node)
	if n.Idle() {
		p.c.Dispatch(n, sub)
		return
	}
	p.nodeQ[node].PushBack(sub)
}

// fallback returns the node to inherit a dead partition's work: up nodes
// before down-but-repairable ones (work parked on a down node waits out
// its whole repair), shortest queue within each class, lowest ID on
// ties; nil when every node is decommissioned.
func (p *Partitioned) fallback() *cluster.Node {
	var best *cluster.Node
	var bestLen int
	for _, n := range p.c.Nodes() {
		if n.Decommissioned() {
			continue
		}
		l := p.nodeQ[n.ID].Len()
		switch {
		case best == nil,
			n.Up() && !best.Up(),
			n.Up() == best.Up() && l < bestLen:
			best, bestLen = n, l
		}
	}
	return best
}

func (p *Partitioned) SubjobDone(n *cluster.Node, _ *job.Subjob) {
	if !p.nodeQ[n.ID].Empty() {
		p.c.Dispatch(n, p.nodeQ[n.ID].PopFront())
	}
}

// NodeDown implements sched.NodeStateObserver. The killed subjob returns
// to the front of its owner's queue — the partition still owns the data
// — and a decommissioned owner's entire backlog is reassigned, since
// nothing would ever drain it.
func (p *Partitioned) NodeDown(n *cluster.Node, lost *job.Subjob) {
	if lost != nil {
		p.nodeQ[n.ID].PushFront(lost)
	}
	if n.Decommissioned() {
		p.reassign(n)
	}
}

// NodeUp implements sched.NodeStateObserver: a repaired or late-joining
// owner resumes its backlog immediately.
func (p *Partitioned) NodeUp(n *cluster.Node) {
	if n.Idle() && !p.nodeQ[n.ID].Empty() {
		p.c.Dispatch(n, p.nodeQ[n.ID].PopFront())
	}
}

// reassign drains a decommissioned owner's queue through enqueue, which
// re-targets each subjob at the live fallback node.
func (p *Partitioned) reassign(dead *cluster.Node) {
	if p.fallback() == nil {
		return // all nodes decommissioned; the run is ending anyway
	}
	q := &p.nodeQ[dead.ID]
	for !q.Empty() {
		p.enqueue(dead.ID, q.PopFront())
	}
}

// QueueDepth reports the backlog of a node's partition queue.
func (p *Partitioned) QueueDepth(node int) int { return p.nodeQ[node].Len() }

// AffineFarm is the processing farm upgraded with node disk caches and
// cache-affine routing, but still without job splitting: a whole job runs
// on the idle node caching the most of its data. It isolates how much of
// the cache-oriented policy's gain comes from caching alone versus from
// intra-job parallelism.
type AffineFarm struct {
	base
	queue jobFIFO
}

// NewAffineFarm returns the cache-affine farm policy.
func NewAffineFarm() *AffineFarm { return &AffineFarm{} }

func (*AffineFarm) Name() string { return "affinefarm" }

func (*AffineFarm) ClusterConfig() cluster.Config {
	return cluster.Config{Caching: true}
}

func (f *AffineFarm) JobArrived(j *job.Job) {
	best := f.bestIdleNode(j)
	if best == nil {
		f.queue.Push(j)
		return
	}
	f.c.Dispatch(best, f.arena().NewSubjob(j, j.Range, -1))
}

// bestIdleNode picks the idle node caching the most of j's range, or nil
// when every node is busy.
func (f *AffineFarm) bestIdleNode(j *job.Job) *cluster.Node {
	var best *cluster.Node
	var bestAmt int64 = -1
	for _, n := range f.c.Nodes() {
		if !n.Idle() {
			continue
		}
		if amt := f.c.Index().CachedOn(n.ID, j.Range); amt > bestAmt {
			best, bestAmt = n, amt
		}
	}
	return best
}

func (f *AffineFarm) SubjobDone(n *cluster.Node, _ *job.Subjob) {
	if f.queue.Empty() {
		return
	}
	// The freed node takes the queued job with the best affinity to it;
	// FCFS ties are broken in queue order.
	bestIdx := 0
	var bestAmt int64 = -1
	for i := 0; i < f.queue.Len(); i++ {
		j := f.queue.Peek(i)
		if amt := f.c.Index().CachedOn(n.ID, j.Range); amt > bestAmt {
			bestIdx, bestAmt = i, amt
		}
	}
	j := f.queue.Remove(bestIdx)
	f.c.Dispatch(n, f.arena().NewSubjob(j, j.Range, -1))
}
