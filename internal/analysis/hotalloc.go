package analysis

import (
	"go/ast"
	"go/token"
	"go/types"

	"physched/internal/analysis/cfg"
	"physched/internal/analysis/driver"
)

// HotAlloc guards the zero-alloc contract of functions annotated
// //physched:hotpath — the event queue, arenas, metrics collector, cache
// LRU and policy dispatch that PR 6 drove from ~38k allocs/op to 563,
// plus the observability hot paths added since (obs.Histogram.Observe
// and the pool's hooked task dispatch), which run once per request or
// per simulation cell and must not put allocations on those paths.
// The bench gate (benchsnap -check) catches an allocation regression at
// CI time from the benchmark side; this analyzer names the construct at
// the source line so the regression never lands. Inside an annotated
// function it flags the constructs that allocate (or defeat escape
// analysis) on the steady-state path:
//
//   - function literals (closure environments escape);
//   - fmt.* calls (variadic interface boxing plus formatting buffers);
//   - string concatenation and string<->[]byte conversions;
//   - unsized make of maps and channels, make([]T, 0) without capacity;
//   - new(T), &T{...}, and slice/map composite literals;
//   - arguments boxed into interface parameters (non-pointer-shaped
//     concrete values heap-allocate at the conversion).
//
// A deliberate allocation (a cold init branch, an error path) carries
// //physched:allocok <reason> on its statement. The analyzer is
// registered on every package: un-annotated functions cost nothing.
var HotAlloc = &driver.Analyzer{
	Name: "hotalloc",
	Doc:  "flag allocation-causing constructs inside //physched:hotpath functions",
	Run:  runHotAlloc,
}

func runHotAlloc(pass *driver.Pass) error {
	hot := hotpathFuncs(pass)
	if len(hot) == 0 {
		return nil
	}
	supp := newSuppressions(pass)
	for fd := range hot {
		// Map iteration order does not matter here: diagnostics are
		// position-sorted by the driver before anything is printed.
		checkHotFunc(pass, supp, fd)
	}
	return nil
}

func checkHotFunc(pass *driver.Pass, supp suppressions, fd *ast.FuncDecl) {
	if fd.Body == nil {
		return
	}
	report := func(pos token.Pos, format string, args ...any) {
		if supp.allows(pos, "allocok") {
			return
		}
		pass.Reportf(pos, format, args...)
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			report(n.Pos(), "closure in hot path %s allocates its environment", fd.Name.Name)
			return false // don't descend: the closure body is not the hot path
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringExpr(pass, n) && !isConstExpr(pass, n) {
				report(n.OpPos, "string concatenation in hot path %s allocates", fd.Name.Name)
			}
		case *ast.CompositeLit:
			tv, ok := pass.TypesInfo.Types[n]
			if !ok {
				return true
			}
			switch tv.Type.Underlying().(type) {
			case *types.Slice:
				report(n.Pos(), "slice literal in hot path %s allocates", fd.Name.Name)
			case *types.Map:
				report(n.Pos(), "map literal in hot path %s allocates", fd.Name.Name)
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					report(n.Pos(), "&composite literal in hot path %s likely escapes to the heap", fd.Name.Name)
				}
			}
		case *ast.CallExpr:
			checkHotCall(pass, report, fd, n)
		}
		return true
	})
	checkHotLoops(pass, report, fd)
}

// checkHotLoops is the CFG-powered tier: constructs that are fine once
// but hazards when executed repeatedly. Cycle membership comes from the
// control-flow graph, so goto-built loops count and code after an
// unconditional return inside a loop does not.
//
//   - defer in a cycle: deferred calls accumulate until the function
//     returns — each costs an allocation and none run inside the loop;
//   - append in a cycle to a slice declared without capacity: every
//     growth step reallocates and copies on the hot path.
func checkHotLoops(pass *driver.Pass, report func(token.Pos, string, ...any), fd *ast.FuncDecl) {
	g := cfg.New(fd.Body, mayReturnFunc(pass))
	cyc := g.InCycle()
	for _, b := range g.Blocks {
		if !b.Live || !cyc[b.Index] {
			continue
		}
		for _, n := range b.Nodes {
			if d, ok := n.(*ast.DeferStmt); ok {
				report(d.Pos(), "defer inside a loop in hot path %s: deferred calls pile up until return", fd.Name.Name)
			}
			// A range head node is the whole RangeStmt; its body belongs
			// to other blocks, so inspect only the ranged expression.
			if rs, ok := n.(*ast.RangeStmt); ok {
				n = rs.X
			}
			ast.Inspect(n, func(m ast.Node) bool {
				if _, ok := m.(*ast.FuncLit); ok {
					return false
				}
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				id, ok := call.Fun.(*ast.Ident)
				if !ok || len(call.Args) == 0 {
					return true
				}
				if bi, ok := pass.TypesInfo.Uses[id].(*types.Builtin); !ok || bi.Name() != "append" {
					return true
				}
				target, ok := call.Args[0].(*ast.Ident)
				if !ok {
					return true
				}
				if sliceNotPreallocated(pass, fd, target) {
					report(call.Pos(), "append to %s in a hot path loop reallocates on growth; preallocate with make(..., 0, cap)", target.Name)
				}
				return true
			})
		}
	}
}

// sliceNotPreallocated reports whether id's declaration inside fd is a
// form with zero capacity: `var x []T`, `x := []T{}`, x := []T(nil), or
// make with a constant-zero length and no capacity. Declarations that
// size the slice (3-arg make, non-zero make, non-empty literals),
// parameters, and anything unresolvable stay unflagged — the check
// claims certainty, not coverage.
func sliceNotPreallocated(pass *driver.Pass, fd *ast.FuncDecl, id *ast.Ident) bool {
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		return false
	}
	noPrealloc := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE || len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				li, ok := lhs.(*ast.Ident)
				if !ok || pass.TypesInfo.Defs[li] != obj {
					continue
				}
				noPrealloc = zeroCapSliceExpr(pass, n.Rhs[i])
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if pass.TypesInfo.Defs[name] != obj {
					continue
				}
				if len(n.Values) == 0 {
					noPrealloc = true // var x []T
				} else if i < len(n.Values) {
					noPrealloc = zeroCapSliceExpr(pass, n.Values[i])
				}
			}
		}
		return true
	})
	return noPrealloc
}

// zeroCapSliceExpr reports whether e definitely yields a slice with no
// capacity to grow into.
func zeroCapSliceExpr(pass *driver.Pass, e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.CompositeLit:
		if _, ok := pass.TypesInfo.Types[e].Type.Underlying().(*types.Slice); ok {
			return len(e.Elts) == 0
		}
	case *ast.Ident:
		return e.Name == "nil"
	case *ast.CallExpr:
		id, ok := e.Fun.(*ast.Ident)
		if !ok {
			return false
		}
		if bi, ok := pass.TypesInfo.Uses[id].(*types.Builtin); !ok || bi.Name() != "make" {
			return false
		}
		if len(e.Args) != 2 {
			return false // make([]T, n, cap) preallocates; 1-arg make of a slice doesn't compile
		}
		if _, ok := pass.TypesInfo.Types[e.Args[0]].Type.Underlying().(*types.Slice); !ok {
			return false
		}
		tv, ok := pass.TypesInfo.Types[e.Args[1]]
		return ok && tv.Value != nil && tv.Value.String() == "0"
	}
	return false
}

func checkHotCall(pass *driver.Pass, report func(token.Pos, string, ...any), fd *ast.FuncDecl, call *ast.CallExpr) {
	// Builtins and conversions first.
	if id, ok := call.Fun.(*ast.Ident); ok {
		if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "new":
				report(call.Pos(), "new(...) in hot path %s allocates; use an arena or pool", fd.Name.Name)
			case "make":
				checkHotMake(pass, report, fd, call)
			}
			return
		}
	}
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		// Conversion: string([]byte) / []byte(string) copy their payload.
		if len(call.Args) == 1 {
			to, from := tv.Type, pass.TypesInfo.Types[call.Args[0]].Type
			if from != nil && isStringBytesConversion(to, from) {
				report(call.Pos(), "string<->[]byte conversion in hot path %s copies and allocates", fd.Name.Name)
			}
		}
		return
	}
	// fmt.* in a hot path means boxing + formatting machinery.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if pkgPath, ok := selectorPackage(pass, sel); ok && pkgPath == "fmt" {
			report(call.Pos(), "fmt.%s in hot path %s allocates (boxing + format buffers)", sel.Sel.Name, fd.Name.Name)
			return
		}
	}
	checkInterfaceBoxing(pass, report, fd, call)
}

func checkHotMake(pass *driver.Pass, report func(token.Pos, string, ...any), fd *ast.FuncDecl, call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	tv, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok {
		return
	}
	switch tv.Type.Underlying().(type) {
	case *types.Map:
		if len(call.Args) < 2 {
			report(call.Pos(), "unsized make(map) in hot path %s grows by rehashing; size it or hoist it out", fd.Name.Name)
		}
	case *types.Chan:
		report(call.Pos(), "make(chan) in hot path %s allocates", fd.Name.Name)
	case *types.Slice:
		// make([]T, 0) with no capacity: every append reallocates.
		if len(call.Args) == 2 {
			if tvLen, ok := pass.TypesInfo.Types[call.Args[1]]; ok && tvLen.Value != nil && tvLen.Value.String() == "0" {
				report(call.Pos(), "make(slice, 0) without capacity in hot path %s reallocates on growth", fd.Name.Name)
			}
		}
	}
}

// checkInterfaceBoxing flags call arguments whose static type is a
// non-pointer-shaped concrete type passed into an interface parameter:
// the conversion heap-allocates the value. Pointer-shaped values
// (pointers, maps, channels, funcs) fit the interface data word and do
// not allocate; nil and interface-to-interface conversions are free.
func checkInterfaceBoxing(pass *driver.Pass, report func(token.Pos, string, ...any), fd *ast.FuncDecl, call *ast.CallExpr) {
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || tv.Type == nil {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			last := params.At(params.Len() - 1).Type()
			if sl, ok := last.(*types.Slice); ok {
				pt = sl.Elem()
			}
			if call.Ellipsis != token.NoPos {
				pt = last // x... passes the slice through, no boxing
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil || !types.IsInterface(pt.Underlying()) {
			continue
		}
		at, ok := pass.TypesInfo.Types[arg]
		if !ok || at.Type == nil || at.IsNil() {
			continue
		}
		if types.IsInterface(at.Type.Underlying()) || pointerShaped(at.Type) {
			continue
		}
		report(arg.Pos(), "argument boxed into interface parameter in hot path %s (concrete %s heap-allocates at the conversion)",
			fd.Name.Name, at.Type.String())
	}
}

func pointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Chan, *types.Signature:
		return true
	}
	return false
}

func isStringExpr(pass *driver.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isConstExpr(pass *driver.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.Value != nil
}

func isStringBytesConversion(to, from types.Type) bool {
	return (isStringType(to) && isByteSlice(from)) || (isByteSlice(to) && isStringType(from))
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}
