package lab

import (
	"context"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"physched/internal/cluster"
	"physched/internal/job"
	"physched/internal/model"
	"physched/internal/sched"
	"physched/internal/workload"
)

// faultScenario is a small scenario with aggressive churn: MTBF short
// enough that every run sees many failures inside its measurement window.
func faultScenario(seed int64) Scenario {
	p := model.PaperCalibrated()
	p.Nodes = 4
	p.CacheBytes = 20 * model.GB
	p.DataspaceBytes = 200 * model.GB
	p.MeanJobEvents = 2000
	return Scenario{
		Params:      p,
		NewPolicy:   func() sched.Policy { return sched.NewOutOfOrder() },
		Load:        1.0,
		Seed:        seed,
		WarmupJobs:  20,
		MeasureJobs: 80,
		Faults: cluster.FaultModel{
			MTBFHours:   48,
			RepairHours: 2,
			CacheLoss:   true,
		},
	}
}

// TestRunWithFaults: a fault-enabled run completes its measurement
// window, observes failures and repairs, and accounts wasted work
// consistently.
func TestRunWithFaults(t *testing.T) {
	res := Run(faultScenario(7))
	if res.Overloaded {
		t.Fatalf("fault run overloaded: %+v", res)
	}
	st := res.Cluster
	if st.Failures == 0 {
		t.Fatal("no failures observed; MTBF too long for the window?")
	}
	if st.Repairs == 0 {
		t.Fatal("no repairs observed")
	}
	if st.Repairs+st.Decommissions > st.Failures {
		t.Errorf("repairs %d + decommissions %d exceed failures %d", st.Repairs, st.Decommissions, st.Failures)
	}
	if st.Reexecutions > st.Dispatches {
		t.Errorf("reexecutions %d exceed dispatches %d", st.Reexecutions, st.Dispatches)
	}
	if res.Goodput <= 0 || res.Goodput > 1 {
		t.Errorf("goodput %v out of (0,1]", res.Goodput)
	}
	total := st.EventsFromCache + st.EventsFromRemote + st.EventsFromTape
	if want := 1 - float64(st.EventsLost)/float64(total); res.Goodput != want {
		t.Errorf("goodput %v inconsistent with counters (want %v)", res.Goodput, want)
	}
}

// finiteWorkload yields n jobs then nil — the replay-style source shape.
type finiteWorkload struct {
	inner workload.Source
	left  int
}

func (f *finiteWorkload) Next() *job.Job {
	if f.left == 0 {
		return nil
	}
	f.left--
	return f.inner.Next()
}

// TestFiniteWorkloadWithFaults: a finite source under churn must end
// when its last job completes — the churn process alone keeps the event
// queue non-empty forever, so the run must not spin to MaxSimTime and
// report a phantom overload.
func TestFiniteWorkloadWithFaults(t *testing.T) {
	s := faultScenario(9)
	s.WarmupJobs = 5
	s.MeasureJobs = 40
	s.NewWorkload = func(seed int64, jobsPerHour float64) workload.Source {
		return &finiteWorkload{
			inner: workload.New(s.Params, rand.New(rand.NewSource(seed)), jobsPerHour),
			left:  60,
		}
	}
	res := Run(s)
	if res.Overloaded {
		t.Fatalf("finite faulted workload reported overloaded: %+v", res)
	}
	if res.MeasuredJobs == 0 || res.AvgSpeedup == 0 {
		t.Errorf("finite faulted workload lost its metrics: %+v", res)
	}
	if res.SimTime > 30*model.Day {
		t.Errorf("run spun on churn events for %v sim seconds after the trace ended", res.SimTime)
	}
}

// TestPartitionedDecommissionReassigns: the partitioned policy moves a
// decommissioned owner's backlog — and its partition's future work — to
// live nodes instead of stranding them (its NodeStateObserver). One node
// is decommissioned deterministically early in the run; every job must
// still complete, including those whose range lies in the dead node's
// partition.
func TestPartitionedDecommissionReassigns(t *testing.T) {
	s := faultScenario(13)
	s.Load = 0.7
	s.NewPolicy = func() sched.Policy { return sched.NewPartitioned() }
	// An (effectively) failure-free model keeps the churn wiring — the
	// requeuer and observer callbacks — installed.
	s.Faults = cluster.FaultModel{MTBFHours: 1e9}
	s.Hooks = func(c *cluster.Cluster) {
		c.Engine().After(2*model.Hour, func() { c.DecommissionNode(c.Node(1)) })
	}
	res := Run(s)
	if res.Cluster.Decommissions != 1 {
		t.Fatalf("decommissions = %d, want 1", res.Cluster.Decommissions)
	}
	if res.Overloaded {
		t.Fatalf("partitioned run with one decommission reported overloaded: %+v", res.Cluster)
	}
	if res.MeasuredJobs != s.MeasureJobs {
		t.Errorf("measured %d of %d jobs — partition work stranded", res.MeasuredJobs, s.MeasureJobs)
	}
}

// TestFaultsDisabledBitIdentical: the zero FaultModel must not perturb a
// run in any way — same results, no fault counters, no goodput field.
func TestFaultsDisabledBitIdentical(t *testing.T) {
	s := faultScenario(3)
	s.Faults = cluster.FaultModel{}
	plain := Run(s)
	if plain.Goodput != 0 {
		t.Errorf("fault-free run reports goodput %v", plain.Goodput)
	}
	if st := plain.Cluster; st.Failures != 0 || st.EventsLost != 0 || st.Reexecutions != 0 {
		t.Errorf("fault-free run reports fault counters: %+v", st)
	}
	baseline := faultScenario(3)
	baseline.Faults = cluster.FaultModel{}
	again := Run(baseline)
	if a, b := marshal(t, []Result{plain}), marshal(t, []Result{again}); string(a) != string(b) {
		t.Errorf("fault-free runs of one scenario differ:\n%s\n%s", a, b)
	}
}

// faultGrid crosses the fault scenario with loads, seeds and a fault
// variant axis (including one with decommissions and spares), the shape
// the determinism property must hold over.
func faultGrid(base int64) Grid {
	return Grid{
		Base:  faultScenario(base),
		Loads: []float64{0.8, 1.1},
		Seeds: Seeds(base, 2),
		Variants: []Variant{
			{Label: "churn"},
			{Label: "churn, cache survives", Mutate: func(s *Scenario) {
				s.Faults.CacheLoss = false
			}},
			{Label: "decommission+spares", Mutate: func(s *Scenario) {
				s.Faults.DecommissionProb = 0.3
				s.Faults.SpareNodes = 2
				s.Faults.JoinHours = 24
				s.Faults.DayNightSwing = 0.5
			}},
		},
	}
}

// TestFaultGridSharedPoolMatchesSerial extends the serial ≡ parallel ≡
// shared-pool byte-identity contract (TestGridSharedPoolMatchesSerial)
// to fault-enabled grids: churn draws come from a per-cell SplitMix64
// stream, so execution shape must not leak into results.
func TestFaultGridSharedPoolMatchesSerial(t *testing.T) {
	serial, err := faultGrid(5).Execute(Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := faultGrid(5).Execute(Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	pool := NewPool(4)
	defer pool.Close()
	var wg sync.WaitGroup
	var shared, sibling *RunSet
	var sharedErr, siblingErr error
	wg.Add(2)
	go func() {
		defer wg.Done()
		shared, sharedErr = faultGrid(5).Execute(Options{Pool: pool})
	}()
	go func() {
		defer wg.Done()
		sibling, siblingErr = faultGrid(17).Execute(Options{Pool: pool})
	}()
	wg.Wait()
	if sharedErr != nil || siblingErr != nil {
		t.Fatalf("shared-pool executions failed: %v, %v", sharedErr, siblingErr)
	}

	want := marshal(t, serial.Results)
	if got := marshal(t, parallel.Results); string(got) != string(want) {
		t.Errorf("parallel fault grid differs from serial:\nserial: %s\nparallel: %s", want, got)
	}
	if got := marshal(t, shared.Results); string(got) != string(want) {
		t.Errorf("shared-pool fault grid differs from serial:\nserial: %s\nshared: %s", want, got)
	}
	sibSerial, err := faultGrid(17).Execute(Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if a, b := marshal(t, sibSerial.Results), marshal(t, sibling.Results); string(a) != string(b) {
		t.Errorf("concurrent sibling fault grid differs from its serial run:\n%s\n%s", a, b)
	}
}

// TestCancelDuringRepairStorm cancels one shared-pool submission while
// its cells are mid-repair-storm and asserts the sibling submission is
// untouched (byte-identical to its serial execution) and no goroutines
// leak past the pool's own workers.
func TestCancelDuringRepairStorm(t *testing.T) {
	before := runtime.NumGoroutine()

	pool := NewPool(4)
	storm := faultGrid(23)
	// A repair storm: nodes fail every few simulated hours and spend half
	// their life down, so requeues are constant.
	storm.Base.Faults = cluster.FaultModel{MTBFHours: 4, RepairHours: 4, CacheLoss: true}
	storm.Seeds = Seeds(23, 4)

	ctx, cancel := context.WithCancel(context.Background())
	cancelled := make(chan *RunSet, 1)
	go func() {
		opts := Options{Pool: pool, Context: ctx, Progress: func(ProgressUpdate) { cancel() }}
		rs, _ := storm.Execute(opts)
		cancelled <- rs
	}()

	sibling, err := faultGrid(29).Execute(Options{Pool: pool})
	if err != nil {
		t.Fatal(err)
	}
	rs := <-cancelled
	if rs.Err == nil {
		t.Log("storm grid finished before the cancel landed; leak and sibling checks still apply")
	}

	serial, err := faultGrid(29).Execute(Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if a, b := marshal(t, serial.Results), marshal(t, sibling.Results); string(a) != string(b) {
		t.Errorf("sibling submission corrupted by cancelled storm:\n%s\n%s", a, b)
	}

	pool.Close()
	// The pool's workers exit on Close; give the runtime a moment before
	// comparing goroutine counts.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
