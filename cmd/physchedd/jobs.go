package main

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"sort"
	"sync"
	"time"

	"physched/client"
)

// jobState is the lifecycle of an asynchronously submitted execution.
type jobState string

const (
	jobRunning   jobState = "running"
	jobDone      jobState = "done"
	jobFailed    jobState = "failed"
	jobCancelled jobState = "cancelled"
)

// validJobState reports whether s names a lifecycle state — the
// vocabulary the ?state= listing filter accepts.
func validJobState(s string) bool {
	switch jobState(s) {
	case jobRunning, jobDone, jobFailed, jobCancelled:
		return true
	}
	return false
}

// job is one async execution — a grid or a study: its identity, progress
// counters, and every NDJSON line produced so far, kept so a stream
// client can attach — or re-attach — at any time and replay the run from
// the beginning. Lines are append-only and stop once state leaves
// jobRunning. The replay buffer is the deliberate memory cost of
// re-attachment: it is bounded by -max-jobs × -max-cells lines, which
// operators size together (cell results also stay addressable through
// the content cache after eviction).
type job struct {
	id   string
	kind string // "grid" | "study"
	hash string // grid or study content hash
	// requestID is the correlation ID of the submitting request, carried
	// on the job record (and its journal) so log lines and status
	// responses for async work still tie back to the original submit.
	requestID string
	// clock stamps created/finished and measures age. Injected (the
	// server wires time.Now, tests wire a fake) so job lifecycle
	// timestamps are deterministic under test and the walltime analyzer
	// holds this package to a single real clock read at the wiring site.
	clock   func() time.Time
	created time.Time
	// cancel aborts the job's execution context (DELETE /v1/jobs/{id}).
	cancel context.CancelFunc
	// persist journals the job's lines and terminal state to the state
	// dir (nil without -state-dir). Called under mu, so writes are
	// ordered exactly like the in-memory replay buffer.
	persist *jobWriter

	mu        sync.Mutex
	cond      *sync.Cond
	lines     [][]byte
	state     jobState
	cancelled bool // cancel requested; colours the terminal state
	done      int
	total     int
	cacheHits int
	errMsg    string
	finished  time.Time
	// traceData is the rendered per-cell trace JSONL of a ?trace=1 job,
	// attached once execution finishes (GET /v1/jobs/{id}/trace). Held
	// in memory only — traces do not survive a restart; a resumed
	// traced job regenerates its trace by re-running.
	traceData []byte
	traced    bool // submitted with ?trace=1
}

func newJob(kind, hash string, total int, clock func() time.Time) *job {
	j := &job{
		id:      newJobID(),
		kind:    kind,
		hash:    hash,
		clock:   clock,
		created: clock(),
		state:   jobRunning,
		total:   total,
	}
	j.cond = sync.NewCond(&j.mu)
	return j
}

// newJobID returns a random 16-hex-character job handle.
func newJobID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(err) // the platform RNG is gone; nothing sensible to serve
	}
	return hex.EncodeToString(b[:])
}

// append records one stream line and folds it into the status counters;
// a result, study or error line completes the job. It is the emit
// callback of runGrid/runStudy, called sequentially from the job's
// goroutine.
func (j *job) append(v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	j.lines = append(j.lines, b)
	if j.persist != nil {
		j.persist.line(b)
	}
	switch l := v.(type) {
	case progressLine:
		j.done, j.total = l.Done, l.Total
	case resultLine:
		j.state = jobDone
		j.cacheHits = l.CacheHits
		j.finished = j.clock()
	case studyLine:
		j.state = jobDone
		j.cacheHits = l.Report.CacheHits
		// Progress counted executed cells (halving re-reads earlier rungs,
		// so the live total can exceed the budget); the finished job
		// reports the budget accounting instead.
		j.done = l.Report.EvaluatedCells
		j.total = l.Report.Budget
		j.finished = j.clock()
	case errorLine:
		j.state = jobFailed
		if j.cancelled {
			j.state = jobCancelled
		}
		j.errMsg = l.Error
		j.finished = j.clock()
	}
	if j.state != jobRunning && j.persist != nil {
		j.persist.end(j.endRecordLocked())
	}
	j.cond.Broadcast()
	return nil
}

// seal marks a job that ended without a terminal line as failed — a
// belt-and-braces guard so no job stays "running" forever.
func (j *job) seal() {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state == jobRunning {
		j.state = jobFailed
		if j.cancelled {
			j.state = jobCancelled
		}
		j.errMsg = "execution ended without a result"
		j.finished = j.clock()
		if j.persist != nil {
			j.persist.end(j.endRecordLocked())
		}
	}
	j.cond.Broadcast()
}

// endRecordLocked snapshots the terminal journal record.
//
//physched:locked j.mu — snapshots the guarded status fields atomically with the state transition
func (j *job) endRecordLocked() journalEnd {
	return journalEnd{
		Type: "end", State: string(j.state), Finished: j.finished,
		Done: j.done, Total: j.total, CacheHits: j.cacheHits, Error: j.errMsg,
	}
}

// requestCancel aborts the job's context. It reports false when the job
// had already finished.
func (j *job) requestCancel() bool {
	j.mu.Lock()
	running := j.state == jobRunning
	if running {
		j.cancelled = true
	}
	j.mu.Unlock()
	if running && j.cancel != nil {
		j.cancel()
	}
	return running
}

func (j *job) status() jobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := jobStatus{
		ID: j.id, Kind: j.kind, Hash: j.hash, GridHash: j.hash, State: string(j.state),
		Done: j.done, Total: j.total, CacheHits: j.cacheHits,
		Created: j.created, AgeSec: j.clock().Sub(j.created).Seconds(),
		Error: j.errMsg, RequestID: j.requestID,
	}
	if j.state != jobRunning {
		f := j.finished
		st.Finished = &f
	}
	return st
}

func (j *job) submitted() jobSubmitted {
	return jobSubmitted{
		JobID:     j.id,
		Hash:      j.hash,
		GridHash:  j.hash,
		StatusURL: "/v1/jobs/" + j.id,
		StreamURL: "/v1/jobs/" + j.id + "/stream",
	}
}

// jobManager tracks async jobs with bounded retention: once more than max
// jobs are held, finished ones are evicted oldest-first. Running jobs are
// never evicted (admission control bounds how many can exist at once), so
// the held count can transiently exceed max until they finish.
type jobManager struct {
	// onEvict, when non-nil, is told the id of every evicted job — the
	// journal uses it to delete the job's state file. Set before any jobs
	// are added (it is called under mu).
	onEvict func(id string)

	mu      sync.Mutex
	max     int
	jobs    map[string]*job
	order   []*job // insertion order, oldest first
	evicted uint64 // jobs dropped by retention, for /metrics
}

func newJobManager(max int) *jobManager {
	return &jobManager{max: max, jobs: map[string]*job{}}
}

func (m *jobManager) add(j *job) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.jobs[j.id] = j
	m.order = append(m.order, j)
	for len(m.order) > m.max {
		evicted := false
		for i, old := range m.order {
			old.mu.Lock()
			running := old.state == jobRunning
			old.mu.Unlock()
			if running {
				continue
			}
			m.order = append(m.order[:i], m.order[i+1:]...)
			delete(m.jobs, old.id)
			m.evicted++
			if m.onEvict != nil {
				m.onEvict(old.id)
			}
			evicted = true
			break
		}
		if !evicted {
			break // everything retained is still running
		}
	}
}

func (m *jobManager) get(id string) (*job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// snapshot copies the retained jobs, oldest first.
func (m *jobManager) snapshot() []*job {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]*job(nil), m.order...)
}

// list snapshots every retained job's status, oldest first (creation
// order, ties broken by id so the listing — and its pagination — is
// stable).
func (m *jobManager) list() []jobStatus {
	jobs := m.snapshot()
	out := make([]jobStatus, len(jobs))
	for i, j := range jobs {
		out[i] = j.status()
	}
	sort.SliceStable(out, func(a, b int) bool {
		if !out[a].Created.Equal(out[b].Created) {
			return out[a].Created.Before(out[b].Created)
		}
		return out[a].ID < out[b].ID
	})
	return out
}

// counts tallies retained jobs by state plus the eviction counter, for
// /metrics.
func (m *jobManager) counts() (byState map[jobState]int, evicted uint64) {
	byState = map[jobState]int{}
	for _, j := range m.snapshot() {
		j.mu.Lock()
		byState[j.state]++
		j.mu.Unlock()
	}
	m.mu.Lock()
	evicted = m.evicted
	m.mu.Unlock()
	return byState, evicted
}

// jobParams identifies a new async job: its kind and content hash, the
// progress total, the journaled request body, and the observability
// carry-overs (submitting request's correlation ID, trace flag).
type jobParams struct {
	kind      string // "grid" | "study"
	hash      string
	total     int
	request   []byte
	requestID string
	traced    bool
}

// startJob launches run in the background as a tracked, cancellable job.
// The job runs to completion even if the submitter disconnects — that is
// the point of async submission — and releases its admission slot when
// execution finishes. DELETE /v1/jobs/{id} cancels it through its
// context. p.request is the original document body, journaled so the job
// can be restarted from the state dir after process death. run receives
// the job itself so post-execution artefacts (the rendered trace) can
// attach before the goroutine exits.
func (s *server) startJob(p jobParams, run func(ctx context.Context, j *job, emit func(any) error)) *job {
	j := newJob(p.kind, p.hash, p.total, s.clock)
	j.requestID = p.requestID
	j.traced = p.traced
	if p.traced {
		s.traceJobs.Add(1)
	}
	if s.journal != nil {
		w, err := s.journal.create(journalMeta{
			Type: "meta", V: journalVersion, ID: j.id, Kind: p.kind, Hash: p.hash,
			Total: p.total, Created: j.created, Request: p.request,
			RequestID: p.requestID, Trace: p.traced,
		})
		if err == nil {
			j.persist = w
		}
		// A journal that cannot be written degrades to memory-only
		// retention; the job itself still runs.
	}
	s.jobs.add(j)
	s.launch(j, run)
	return j
}

// launch runs an added job's execution goroutine. The caller must hold
// one admission slot (taken by admit for submissions, seized directly by
// recovery); the goroutine releases it when execution finishes. The
// finished job's end-to-end latency lands in the by-kind job histogram,
// and one structured log line records the outcome under the submitting
// request's correlation ID.
func (s *server) launch(j *job, run func(ctx context.Context, j *job, emit func(any) error)) {
	ctx, cancel := context.WithCancel(context.Background())
	j.cancel = cancel
	s.jobsWG.Add(1)
	//physched:spawnok exits when run returns; cancel (DELETE /v1/jobs/{id} or drain expiry) stops run between cells, and jobsWG tracks it
	go func() {
		defer s.jobsWG.Done()
		defer s.release()
		defer cancel()
		run(ctx, j, j.append)
		j.seal()
		j.mu.Lock()
		state, errMsg := j.state, j.errMsg
		seconds := j.finished.Sub(j.created).Seconds()
		done, total := j.done, j.total
		j.mu.Unlock()
		s.jobDur.With(j.kind).Observe(seconds)
		s.logger.LogAttrs(ctx, slog.LevelInfo, "job finished",
			slog.String("job_id", j.id),
			slog.String("request_id", j.requestID),
			slog.String("kind", j.kind),
			slog.String("state", string(state)),
			slog.Int("done", done),
			slog.Int("total", total),
			slog.Float64("dur_seconds", seconds),
			slog.String("error", errMsg),
		)
	}()
}

// attachTrace renders a traced grid plan's per-cell recorders into the
// job's trace buffer: for each cell one header line (index, hash, label,
// load, seed, event and dropped counts) followed by the cell's events,
// all JSONL. Called from the job goroutine after execution finishes.
func (s *server) attachTrace(j *job, p *gridPlan) {
	var buf bytes.Buffer
	var events, dropped uint64
	for i, rec := range p.recs {
		evs := rec.Events()
		hdr := client.TraceCellHeader{
			Type: "cell", Index: i, Hash: p.keys[i], Label: p.cells[i].Label,
			Load: p.cells[i].Scenario.Load, Seed: p.cells[i].Scenario.Seed,
			Events: len(evs), Dropped: rec.Dropped(),
		}
		hb, err := json.Marshal(hdr)
		if err != nil {
			continue
		}
		buf.Write(append(hb, '\n'))
		for _, e := range evs {
			eb, err := json.Marshal(e)
			if err != nil {
				continue
			}
			buf.Write(append(eb, '\n'))
		}
		events += uint64(len(evs))
		dropped += rec.Dropped()
	}
	s.traceEvents.Add(events)
	s.traceDropped.Add(dropped)
	data := buf.Bytes()
	if data == nil {
		data = []byte{} // distinguish "attached but empty" from "lost in a restart"
	}
	j.mu.Lock()
	j.traceData = data
	j.mu.Unlock()
}

// handleJobTrace serves a finished traced job's per-cell simulation
// trace as NDJSON: cell header lines interleaved with trace events.
// Unknown jobs 404; jobs not submitted with ?trace=1 404 with a
// distinct message; still-running jobs 409 (the trace attaches at
// completion).
func (s *server) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errNoJob)
		return
	}
	j.mu.Lock()
	traced, running, data := j.traced, j.state == jobRunning, j.traceData
	j.mu.Unlock()
	if !traced {
		writeError(w, http.StatusNotFound,
			errors.New("job has no trace: submit with ?trace=1 (traces are held in memory and do not survive restarts)"))
		return
	}
	if running {
		writeError(w, http.StatusConflict,
			errors.New("job is still running; the trace attaches when it finishes"))
		return
	}
	if data == nil {
		// Traced flag restored from a journal, but the trace itself died
		// with the previous process and the resumed run has not finished.
		writeError(w, http.StatusNotFound,
			errors.New("trace not available: it did not survive a restart"))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	w.Write(data)
}

// handleJobs lists retained async jobs, newest-page-first-proof: stable
// oldest-first order, filtered by ?state= and ?kind=, paginated by
// ?page= and ?page_size=.
func (s *server) handleJobs(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	page, size, err := parsePage(q)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	state, kind := q.Get("state"), q.Get("kind")
	if state != "" && !validJobState(state) {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("state must be one of running, done, failed, cancelled; got %q", state))
		return
	}
	if kind != "" && kind != "grid" && kind != "study" {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("kind must be grid or study, got %q", kind))
		return
	}
	all := s.jobs.list()
	filtered := make([]jobStatus, 0, len(all))
	for _, st := range all {
		if (state == "" || st.State == state) && (kind == "" || st.Kind == kind) {
			filtered = append(filtered, st)
		}
	}
	items, info := paginate(filtered, page, size)
	writeJSON(w, http.StatusOK, jobList{Jobs: items, PageInfo: info})
}

// handleJob serves an async job's status and progress counters.
func (s *server) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errNoJob)
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

// handleJobCancel cancels a running async job through its context: the
// execution stops between cells (completed cells keep their cached
// results), the job transitions to "cancelled", and its stream terminates
// with an error line. Unknown jobs 404; finished jobs 409.
func (s *server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errNoJob)
		return
	}
	if !j.requestCancel() {
		writeError(w, http.StatusConflict, errors.New("job already finished"))
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

var errNoJob = errors.New("no such job (finished jobs are retained up to -max-jobs)")

// handleJobStream (re)attaches to an async job's NDJSON stream: it
// replays every line produced so far, then follows the live run until
// the terminal result or error line. A failed write — the client went
// away — stops the stream; the job itself keeps running.
func (s *server) handleJobStream(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errNoJob)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	ctx := r.Context()
	go func() { // wake the wait loop when the client disconnects
		<-ctx.Done()
		// Broadcast under the mutex: otherwise the wakeup could land
		// between the loop's ctx check and its cond.Wait and be lost.
		j.mu.Lock()
		j.cond.Broadcast()
		j.mu.Unlock()
	}()
	cursor := 0
	for {
		j.mu.Lock()
		for cursor >= len(j.lines) && j.state == jobRunning && ctx.Err() == nil {
			j.cond.Wait()
		}
		batch := j.lines[cursor:]
		finished := j.state != jobRunning
		j.mu.Unlock()
		if ctx.Err() != nil {
			return
		}
		for _, line := range batch {
			if _, err := w.Write(line); err != nil {
				return // dead connection: stop the stream
			}
			cursor++
		}
		if len(batch) > 0 && flusher != nil {
			flusher.Flush()
		}
		if finished {
			// No lines are appended after the terminal one, and the
			// snapshot above was taken at or after it, so the batch we
			// just wrote was the remainder.
			return
		}
	}
}
