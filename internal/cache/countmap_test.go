package cache

import (
	"math/rand"
	"testing"

	"physched/internal/dataspace"
)

func TestCountMapIncrement(t *testing.T) {
	var m CountMap
	if got := m.Increment(dataspace.Iv(0, 10)); got != 1 {
		t.Errorf("first increment min = %d, want 1", got)
	}
	if got := m.Increment(dataspace.Iv(0, 10)); got != 2 {
		t.Errorf("second increment min = %d, want 2", got)
	}
	// Partially overlapping: new part has count 1, so min is 1.
	if got := m.Increment(dataspace.Iv(5, 15)); got != 1 {
		t.Errorf("partial increment min = %d, want 1", got)
	}
	if got := m.Count(7); got != 3 {
		t.Errorf("Count(7) = %d, want 3", got)
	}
	if got := m.Count(12); got != 1 {
		t.Errorf("Count(12) = %d, want 1", got)
	}
	if got := m.Count(100); got != 0 {
		t.Errorf("Count(100) = %d, want 0", got)
	}
}

func TestCountMapReset(t *testing.T) {
	var m CountMap
	m.Increment(dataspace.Iv(0, 100))
	m.Increment(dataspace.Iv(0, 100))
	m.Reset(dataspace.Iv(25, 75))
	if m.Count(30) != 0 {
		t.Error("reset range still counted")
	}
	if m.Count(10) != 2 || m.Count(80) != 2 {
		t.Error("reset clobbered neighbours")
	}
}

func TestCountMapAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var m CountMap
	ref := map[int64]int64{}
	const universe = 300
	for step := 0; step < 3000; step++ {
		a := rng.Int63n(universe)
		iv := dataspace.Iv(a, a+1+rng.Int63n(60))
		if rng.Intn(5) == 0 {
			m.Reset(iv)
			for e := iv.Start; e < iv.End; e++ {
				delete(ref, e)
			}
			continue
		}
		gotMin := m.Increment(iv)
		wantMin := int64(1 << 62)
		for e := iv.Start; e < iv.End; e++ {
			ref[e]++
			if ref[e] < wantMin {
				wantMin = ref[e]
			}
		}
		if gotMin != wantMin {
			t.Fatalf("step %d: Increment min = %d, want %d", step, gotMin, wantMin)
		}
		for e := int64(0); e < universe+61; e++ {
			if m.Count(e) != ref[e] {
				t.Fatalf("step %d: Count(%d) = %d, want %d", step, e, m.Count(e), ref[e])
			}
		}
	}
}
