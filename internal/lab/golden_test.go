package lab

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"physched/internal/cluster"
)

var updateGolden = flag.Bool("update", false, "rewrite golden wire-format files")

// goldenResult is a fully populated Result literal. Values are arbitrary
// but distinct per field, so a swapped or renamed JSON key cannot cancel
// out.
func goldenResult() Result {
	return Result{
		PolicyName:   "outoforder",
		Load:         1.5,
		Overloaded:   false,
		AvgSpeedup:   12.25,
		AvgWaiting:   321.5,
		MaxWaiting:   4096.125,
		P99Waiting:   2048.5,
		AvgProc:      2600.75,
		MeasuredJobs: 600,
		SimTime:      1.44e6,
		Cluster: cluster.Stats{
			EventsFromCache:  1_000_001,
			EventsFromRemote: 2_002,
			EventsFromTape:   30_003,
			EventsReplicated: 404,
			Preemptions:      55,
			Dispatches:       6_606,
		},
	}
}

// goldenFaultResult populates the node-dynamics extension of the wire
// format. It lives in separate golden files so result.golden.json keeps
// proving that fault-free results encode byte-identically to builds that
// predate node dynamics.
func goldenFaultResult() Result {
	r := goldenResult()
	r.Goodput = 0.96875
	r.Cluster.Failures = 7
	r.Cluster.Repairs = 5
	r.Cluster.Decommissions = 1
	r.Cluster.NodeJoins = 2
	r.Cluster.EventsLost = 32_258
	r.Cluster.Reexecutions = 8
	return r
}

func goldenFaultAggregate() Aggregate {
	r := goldenFaultResult()
	agg := goldenAggregate()
	agg.GoodputMean = 0.96875
	agg.WastedEventsMean = 32_258
	agg.ReexecutionsMean = 8
	agg.Results = []Result{r}
	agg.Replicas = 1
	agg.Overloaded = 0
	return agg
}

func goldenAggregate() Aggregate {
	r := goldenResult()
	o := goldenResult()
	o.Overloaded = true
	return Aggregate{
		Replicas:    2,
		Overloaded:  1,
		SpeedupMean: 12.25,
		SpeedupStd:  0.5,
		SpeedupCI95: 0.25,
		WaitingMean: 321.5,
		WaitingStd:  10.125,
		WaitingCI95: 5.5,
		Results:     []Result{r, o},
	}
}

// checkGolden pins v's JSON encoding — the wire format of physchedd
// responses and resultcache files — to testdata/<name>. Run
// `go test ./internal/lab -run TestWireFormat -update` after a deliberate
// format change.
func checkGolden(t *testing.T, name string, v any) {
	t.Helper()
	got, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create the golden file)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("wire format of %s changed.\ngot:\n%s\nwant:\n%s\n"+
			"If the change is deliberate, bump consumers and run with -update.",
			name, got, want)
	}
}

// TestWireFormatResult and TestWireFormatAggregate pin the JSON wire
// format served by cmd/physchedd and stored by internal/resultcache, so a
// refactor of these structs cannot silently break clients or invalidate
// caches.
func TestWireFormatResult(t *testing.T) { checkGolden(t, "result.golden.json", goldenResult()) }
func TestWireFormatAggregate(t *testing.T) {
	checkGolden(t, "aggregate.golden.json", goldenAggregate())
}

// TestWireFormatFaultResult and TestWireFormatFaultAggregate pin the
// node-dynamics fields (goodput, wasted work, re-executions, churn
// counters) added for cluster.FaultModel scenarios.
func TestWireFormatFaultResult(t *testing.T) {
	checkGolden(t, "result_faults.golden.json", goldenFaultResult())
}
func TestWireFormatFaultAggregate(t *testing.T) {
	checkGolden(t, "aggregate_faults.golden.json", goldenFaultAggregate())
}

// TestWireFormatFaultFreeOmitsFaultFields: the fault extension must be
// invisible in fault-free encodings — the property that keeps old golden
// files, cached results and spec hashes byte-stable.
func TestWireFormatFaultFreeOmitsFaultFields(t *testing.T) {
	b, err := json.Marshal(goldenResult())
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"goodput", "failures", "repairs", "decommissions", "node_joins", "events_lost", "reexecutions"} {
		if bytes.Contains(b, []byte(field)) {
			t.Errorf("fault-free result encodes %q:\n%s", field, b)
		}
	}
}

// TestWireFormatRoundTrip: decoding the wire format back must restore the
// summary fields exactly (Scenario and Collector are intentionally not
// part of the wire format).
func TestWireFormatRoundTrip(t *testing.T) {
	b, err := json.Marshal(goldenResult())
	if err != nil {
		t.Fatal(err)
	}
	var back Result
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	// Result holds closures (Scenario) and a Collector pointer, so compare
	// the wire projection, which is exactly what round-trips.
	b2, err := json.Marshal(back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, b2) {
		t.Errorf("round trip changed the result:\n%s\nwant\n%s", b2, b)
	}
}
