package main

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"

	"physched/client"
	"physched/internal/lab"
	"physched/internal/resultcache"
)

// hexID matches the generated correlation IDs (8 random bytes, hex).
var hexID = regexp.MustCompile(`^[0-9a-f]{16}$`)

// TestRequestIDEcho pins the correlation contract on representative
// endpoints across methods and outcomes, error envelopes included:
// absent IDs are generated, supplied IDs come back verbatim, and
// injection-shaped IDs are sanitized before they reach a header or log.
func TestRequestIDEcho(t *testing.T) {
	ts := testServer(t)

	endpoints := []struct {
		method, path, body string
		status             int
	}{
		{"GET", "/healthz", "", 200},
		{"GET", "/metrics", "", 200},
		{"GET", "/v1/policies", "", 200},
		{"GET", "/v1/workloads", "", 200},
		{"GET", "/v1/jobs", "", 200},
		{"GET", "/v1/studies", "", 200},
		{"POST", "/v1/specs", `{not json`, 400},
		{"POST", "/v1/grids", `{not json`, 400},
		{"GET", "/v1/jobs/deadbeefdeadbeef", "", 404},
		{"GET", "/v1/jobs/deadbeefdeadbeef/trace", "", 404},
		{"DELETE", "/v1/jobs/deadbeefdeadbeef", "", 404},
		{"GET", "/v1/results/" + strings.Repeat("0", 64), "", 404},
		{"GET", "/v1/policies?page=0", "", 400},
		{"GET", "/nope", "", 404}, // unmatched route still correlates
	}
	for _, ep := range endpoints {
		t.Run(ep.method+" "+ep.path, func(t *testing.T) {
			call := func(supplied string) *http.Response {
				var body *strings.Reader = strings.NewReader(ep.body)
				req, err := http.NewRequest(ep.method, ts.URL+ep.path, body)
				if err != nil {
					t.Fatal(err)
				}
				if supplied != "" {
					req.Header.Set("X-Request-Id", supplied)
				}
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					t.Fatal(err)
				}
				t.Cleanup(func() { resp.Body.Close() })
				if resp.StatusCode != ep.status {
					t.Fatalf("status %d, want %d", resp.StatusCode, ep.status)
				}
				return resp
			}

			// No inbound ID: the server mints one.
			if got := call("").Header.Get("X-Request-Id"); !hexID.MatchString(got) {
				t.Errorf("generated ID %q is not 16 hex chars", got)
			}
			// Inbound ID: echoed verbatim.
			if got := call("my-trace-42").Header.Get("X-Request-Id"); got != "my-trace-42" {
				t.Errorf("echoed %q, want my-trace-42", got)
			}
			// Injection-shaped ID: quotes, backslashes and spaces dropped
			// (CR/LF too, but Go's transport refuses to send those at all).
			if got := call(`evil" \ id`).Header.Get("X-Request-Id"); got != "evilid" {
				t.Errorf("sanitized to %q, want evilid", got)
			}
		})
	}
}

// TestJobCarriesRequestID submits an async job under a client-supplied
// correlation ID and checks the ID lands on the job record, its status
// document and every listing row — the whole point of carrying it: one
// grep connects the submit request to the job's asynchronous lifetime.
func TestJobCarriesRequestID(t *testing.T) {
	ts := testServer(t)

	req, err := http.NewRequest("POST", ts.URL+"/v1/grids?async=1", strings.NewReader(smallGridBody(930)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-Id", "corr-123")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	var sub jobSubmitted
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}

	st := waitDone(t, ts, sub.JobID)
	if st.RequestID != "corr-123" {
		t.Errorf("job status request_id %q, want corr-123", st.RequestID)
	}

	c := client.New(ts.URL)
	list, err := c.Jobs(context.Background(), client.JobFilter{})
	if err != nil || len(list.Jobs) != 1 {
		t.Fatalf("jobs list: %v (%d rows)", err, len(list.Jobs))
	}
	if list.Jobs[0].RequestID != "corr-123" {
		t.Errorf("listed request_id %q, want corr-123", list.Jobs[0].RequestID)
	}
}

// TestTraceRoundTrip drives the ?trace=1 job flow through the typed
// client: submit, wait, fetch, and decode the per-cell NDJSON. It then
// pins the two invariants tracing must not break — traced results are
// byte-identical to untraced ones (trace cells bypass the cache), and
// the error paths (trace without async, untraced job, unknown job)
// answer with the documented statuses.
func TestTraceRoundTrip(t *testing.T) {
	ts := testServer(t)
	c := client.New(ts.URL)
	ctx := context.Background()

	body := []byte(smallGridBody(940))
	sub, err := c.SubmitGridTraced(ctx, body)
	if err != nil {
		t.Fatalf("traced submit: %v", err)
	}
	st := waitDone(t, ts, sub.JobID)
	if st.State != "done" {
		t.Fatalf("traced job ended %q: %s", st.State, st.Error)
	}

	cells, err := c.JobTrace(ctx, sub.JobID)
	if err != nil {
		t.Fatalf("fetch trace: %v", err)
	}
	if len(cells) != st.Total {
		t.Fatalf("trace has %d cells, job ran %d", len(cells), st.Total)
	}
	for i, cell := range cells {
		if cell.Header.Index != i {
			t.Errorf("cell %d header index %d", i, cell.Header.Index)
		}
		if cell.Header.Hash == "" {
			t.Errorf("cell %d has no spec hash", i)
		}
		if len(cell.Events) != cell.Header.Events {
			t.Errorf("cell %d: %d event lines, header says %d", i, len(cell.Events), cell.Header.Events)
		}
		if cell.Header.Events == 0 && cell.Header.Dropped == 0 {
			t.Errorf("cell %d traced nothing", i)
		}
		for _, ev := range cell.Events {
			if ev.Kind == "" {
				t.Errorf("cell %d has an event without a kind", i)
			}
		}
	}

	// Byte-identity: an untraced run of the same grid, which now reads
	// the traced job's cache writes... except traced cells never wrote
	// the cache, so this re-simulates — and must agree byte for byte.
	// Every traced cell's hash resolves to the same cached result.
	result, err := c.RunGrid(ctx, body, nil)
	if err != nil {
		t.Fatalf("untraced re-run: %v", err)
	}
	if len(result.Cells) != len(cells) {
		t.Fatalf("untraced run has %d cells, traced had %d", len(result.Cells), len(cells))
	}
	for i, cell := range cells {
		if got := result.Cells[i].Hash; got != cell.Header.Hash {
			t.Errorf("cell %d hash drifted under tracing: traced %s, untraced %s", i, cell.Header.Hash, got)
		}
	}

	// Error paths.
	if _, err := c.RunGrid(ctx, body, nil); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/grids?trace=1", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("trace without async: status %d, want 400", resp.StatusCode)
	}

	plain, err := c.SubmitGrid(ctx, body) // cached: finishes immediately
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, ts, plain.JobID)
	if _, err := c.JobTrace(ctx, plain.JobID); !isAPIError(err, 404, client.CodeNotFound) {
		t.Errorf("trace of untraced job: %v, want 404 not_found", err)
	}
	if _, err := c.JobTrace(ctx, "deadbeefdeadbeef"); !isAPIError(err, 404, client.CodeNotFound) {
		t.Errorf("trace of unknown job: %v, want 404 not_found", err)
	}
}

// isAPIError reports whether err is an APIError with the given status
// and code.
func isAPIError(err error, status int, code string) bool {
	ae, ok := err.(*client.APIError)
	return ok && ae.Status == status && ae.Code == code
}

// TestMetricsObservability scrapes /metrics through client.ParseMetrics
// on an injected clock and checks the observability families: the four
// latency histograms exist and fill from real traffic, trace counters
// track a traced job, and build info and the process start time are
// present for fleet dashboards.
func TestMetricsObservability(t *testing.T) {
	epoch := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	pool := lab.NewPool(2)
	t.Cleanup(pool.Close)
	s := mustServer(t, serverConfig{
		Cache:    resultcache.NewMemory(),
		Pool:     pool,
		MaxCells: 100,
		Clock:    func() time.Time { return epoch },
	})
	ts := httptest.NewServer(s.routes())
	t.Cleanup(ts.Close)
	c := client.New(ts.URL)
	ctx := context.Background()

	// Generate traffic: one sync grid (pool + HTTP histograms), one
	// traced async job (job histogram + trace counters), one 404.
	if _, err := c.RunGrid(ctx, []byte(smallGridBody(960)), nil); err != nil {
		t.Fatal(err)
	}
	sub, err := c.SubmitGridTraced(ctx, []byte(smallGridBody(970)))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, ts, sub.JobID)
	http.Get(ts.URL + "/v1/jobs/deadbeefdeadbeef")

	raw, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	pm, err := client.ParseMetrics(raw)
	if err != nil {
		t.Fatalf("the exposition does not parse: %v", err)
	}

	for _, name := range []string{
		"physchedd_http_request_duration_seconds",
		"physchedd_pool_queue_wait_seconds",
		"physchedd_cell_duration_seconds",
		"physchedd_job_duration_seconds",
	} {
		f, ok := pm.Families[name]
		if !ok || f.Type != "histogram" {
			t.Errorf("family %s missing or not a histogram: %+v", name, f)
		}
	}

	// HTTP histogram: labelled by route and status, fed by the traffic
	// above. The sync grid POST and the 404 each have a series.
	if h, ok := pm.HistogramAt("physchedd_http_request_duration_seconds",
		map[string]string{"route": "POST /v1/grids", "status": "200"}); !ok || h.Count < 1 {
		t.Errorf("grid POST series: ok=%v %+v", ok, h)
	}
	if h, ok := pm.HistogramAt("physchedd_http_request_duration_seconds",
		map[string]string{"route": "GET /v1/jobs/{id}", "status": "404"}); !ok || h.Count < 1 {
		t.Errorf("404 series: ok=%v %+v", ok, h)
	}

	// Pool histograms: 16 cells ran, so waits and runs were observed.
	if h, ok := pm.HistogramAt("physchedd_pool_queue_wait_seconds", nil); !ok || h.Count < 16 {
		t.Errorf("queue-wait count: ok=%v %+v", ok, h)
	}
	if h, ok := pm.HistogramAt("physchedd_cell_duration_seconds", nil); !ok || h.Count < 16 {
		t.Errorf("cell-duration count: ok=%v %+v", ok, h)
	}
	if h, ok := pm.HistogramAt("physchedd_job_duration_seconds",
		map[string]string{"kind": "grid"}); !ok || h.Count != 1 {
		t.Errorf("job-duration grid series: ok=%v %+v", ok, h)
	}

	if v, ok := pm.Value("physchedd_trace_jobs_total", nil); !ok || v != 1 {
		t.Errorf("trace jobs %v ok=%v, want 1", v, ok)
	}
	if v, ok := pm.Value("physchedd_trace_events_total", nil); !ok || v == 0 {
		t.Errorf("trace events %v ok=%v, want > 0", v, ok)
	}
	if _, ok := pm.Value("physchedd_trace_events_dropped_total", nil); !ok {
		t.Error("trace dropped counter missing")
	}

	if f := pm.Families["physchedd_build_info"]; f == nil || len(f.Samples) != 1 {
		t.Fatal("build info missing")
	} else {
		bi := f.Samples[0]
		if bi.Value != 1 || bi.Labels["go_version"] == "" || bi.Labels["module_version"] == "" {
			t.Errorf("build info sample: %+v", bi)
		}
	}
	if v, ok := pm.Value("physchedd_process_start_time_seconds", nil); !ok || v != float64(epoch.Unix()) {
		t.Errorf("start time %v ok=%v, want %d", v, ok, epoch.Unix())
	}
}

// TestDrainRejectsExecutions pins the shutdown admission contract: after
// beginDrain, execution endpoints answer 503 unavailable while read-only
// endpoints keep working (a draining server must stay debuggable), and
// drain waits for running jobs to finish.
func TestDrainRejectsExecutions(t *testing.T) {
	pool := lab.NewPool(2)
	t.Cleanup(pool.Close)
	s := mustServer(t, serverConfig{Cache: resultcache.NewMemory(), Pool: pool, MaxCells: 100})
	ts := httptest.NewServer(s.routes())
	t.Cleanup(ts.Close)
	c := client.New(ts.URL)
	ctx := context.Background()

	// A job submitted before the drain must complete during it.
	sub, err := c.SubmitGrid(ctx, []byte(smallGridBody(980)))
	if err != nil {
		t.Fatal(err)
	}

	s.beginDrain()

	for _, ep := range []struct{ method, path, body string }{
		{"POST", "/v1/specs", `{"policy": {"name": "farm"}, "load_jobs_per_hour": 1}`},
		{"POST", "/v1/grids", smallGridBody(990)},
		{"POST", "/v1/grids?async=1", smallGridBody(991)},
		{"POST", "/v1/studies", studyBody},
	} {
		req, err := http.NewRequest(ep.method, ts.URL+ep.path, strings.NewReader(ep.body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var env client.ErrorEnvelope
		err = json.NewDecoder(resp.Body).Decode(&env)
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("%s %s while draining: status %d, want 503", ep.method, ep.path, resp.StatusCode)
		}
		if err != nil || env.Error.Code != client.CodeUnavailable {
			t.Errorf("%s %s envelope: %v %+v", ep.method, ep.path, err, env)
		}
	}

	// Read-only surface stays up.
	if err := c.Health(ctx); err != nil {
		t.Errorf("health while draining: %v", err)
	}
	if _, err := c.Metrics(ctx); err != nil {
		t.Errorf("metrics while draining: %v", err)
	}
	if _, err := c.Job(ctx, sub.JobID); err != nil {
		t.Errorf("job status while draining: %v", err)
	}

	dctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	if err := s.drain(dctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	st, err := c.Job(ctx, sub.JobID)
	if err != nil || st.State != "done" {
		t.Fatalf("job after drain: %v %+v", err, st)
	}
}
