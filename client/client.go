package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"
)

// Client talks to one physchedd instance. The zero value is not usable;
// construct with New. Methods are safe for concurrent use.
type Client struct {
	base string
	http *http.Client
}

// Option customises a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (timeouts,
// transports, test doubles). The default client has no overall timeout:
// grid and study streams legitimately run for as long as the simulation
// does.
func WithHTTPClient(h *http.Client) Option {
	return func(c *Client) { c.http = h }
}

// New returns a client for the service at base, e.g.
// "http://localhost:8080".
func New(base string, opts ...Option) *Client {
	c := &Client{base: strings.TrimRight(base, "/"), http: &http.Client{}}
	for _, o := range opts {
		o(c)
	}
	return c
}

// apiError decodes the structured error envelope of a non-2xx response.
// A body that is not an envelope (a proxy's HTML, a truncated write)
// still produces a usable APIError with the raw text as the message.
func apiError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	e := &APIError{Status: resp.StatusCode, Message: strings.TrimSpace(string(body))}
	var env ErrorEnvelope
	if err := json.Unmarshal(body, &env); err == nil && env.Error.Message != "" {
		e.Code = env.Error.Code
		e.Message = env.Error.Message
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil {
			e.RetryAfter = secs
		}
	}
	return e
}

// do issues one request and decodes a 2xx JSON body into out (skipped
// when out is nil). Non-2xx responses become *APIError.
func (c *Client) do(ctx context.Context, method, path string, body io.Reader, out any) error {
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return apiError(resp)
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Health probes GET /healthz.
func (c *Client) Health(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil)
}

// Page selects one page of a listing. The zero value means the server's
// defaults (first page, default size).
type Page struct {
	Page int // 1-based; 0 = first page
	Size int // items per page; 0 = server default
}

func (p Page) query() url.Values {
	q := url.Values{}
	if p.Page > 0 {
		q.Set("page", strconv.Itoa(p.Page))
	}
	if p.Size > 0 {
		q.Set("page_size", strconv.Itoa(p.Size))
	}
	return q
}

// Policies lists one page of registered scheduling policies.
func (c *Client) Policies(ctx context.Context, p Page) (PolicyList, error) {
	var out PolicyList
	err := c.do(ctx, http.MethodGet, "/v1/policies"+encodeQuery(p.query()), nil, &out)
	return out, err
}

// Workloads lists one page of registered workload kinds.
func (c *Client) Workloads(ctx context.Context, p Page) (WorkloadList, error) {
	var out WorkloadList
	err := c.do(ctx, http.MethodGet, "/v1/workloads"+encodeQuery(p.query()), nil, &out)
	return out, err
}

// RunSpec runs one declarative scenario spec (POST /v1/specs),
// blocking until the result — cached or freshly simulated — arrives.
func (c *Client) RunSpec(ctx context.Context, spec []byte) (SpecResponse, error) {
	var out SpecResponse
	err := c.do(ctx, http.MethodPost, "/v1/specs", bytes.NewReader(spec), &out)
	return out, err
}

// Result fetches a cached run result by its spec hash.
func (c *Client) Result(ctx context.Context, hash string) (SpecResponse, error) {
	var out SpecResponse
	err := c.do(ctx, http.MethodGet, "/v1/results/"+url.PathEscape(hash), nil, &out)
	return out, err
}

// Aggregate fetches a cached replica aggregate by its hash.
func (c *Client) Aggregate(ctx context.Context, hash string) (AggregateResponse, error) {
	var out AggregateResponse
	err := c.do(ctx, http.MethodGet, "/v1/aggregates/"+url.PathEscape(hash), nil, &out)
	return out, err
}

// RunGrid runs a grid spec synchronously (POST /v1/grids), invoking
// onProgress — when non-nil — for every streamed progress line, and
// returns the terminal result line.
func (c *Client) RunGrid(ctx context.Context, grid []byte, onProgress func(ProgressLine)) (*ResultLine, error) {
	end, err := c.stream(ctx, http.MethodPost, "/v1/grids", bytes.NewReader(grid), onProgress)
	if err != nil {
		return nil, err
	}
	if end.result == nil {
		return nil, fmt.Errorf("physchedd: grid stream ended with a %s line, want result", end.kind)
	}
	return end.result, nil
}

// RunStudy runs a budgeted scenario search synchronously
// (POST /v1/studies) and returns the terminal study line.
func (c *Client) RunStudy(ctx context.Context, study []byte, onProgress func(ProgressLine)) (*StudyLine, error) {
	end, err := c.stream(ctx, http.MethodPost, "/v1/studies", bytes.NewReader(study), onProgress)
	if err != nil {
		return nil, err
	}
	if end.study == nil {
		return nil, fmt.Errorf("physchedd: study stream ended with a %s line, want study", end.kind)
	}
	return end.study, nil
}

// SubmitGrid submits a grid as a background job (POST /v1/grids?async=1).
func (c *Client) SubmitGrid(ctx context.Context, grid []byte) (JobSubmitted, error) {
	var out JobSubmitted
	err := c.do(ctx, http.MethodPost, "/v1/grids?async=1", bytes.NewReader(grid), &out)
	return out, err
}

// SubmitStudy submits a study as a background job
// (POST /v1/studies?async=1).
func (c *Client) SubmitStudy(ctx context.Context, study []byte) (JobSubmitted, error) {
	var out JobSubmitted
	err := c.do(ctx, http.MethodPost, "/v1/studies?async=1", bytes.NewReader(study), &out)
	return out, err
}

// Job fetches an async job's status document.
func (c *Client) Job(ctx context.Context, id string) (JobStatus, error) {
	var out JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id), nil, &out)
	return out, err
}

// JobFilter narrows and pages GET /v1/jobs.
type JobFilter struct {
	State string // running | done | failed | cancelled; "" = all
	Kind  string // grid | study; "" = all
	Page
}

// Jobs lists one page of retained async jobs, optionally filtered by
// state and kind.
func (c *Client) Jobs(ctx context.Context, f JobFilter) (JobList, error) {
	q := f.query()
	if f.State != "" {
		q.Set("state", f.State)
	}
	if f.Kind != "" {
		q.Set("kind", f.Kind)
	}
	var out JobList
	err := c.do(ctx, http.MethodGet, "/v1/jobs"+encodeQuery(q), nil, &out)
	return out, err
}

// CancelJob cancels a running async job (DELETE /v1/jobs/{id}). Unknown
// jobs return not_found, finished jobs conflict.
func (c *Client) CancelJob(ctx context.Context, id string) (JobStatus, error) {
	var out JobStatus
	err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+url.PathEscape(id), nil, &out)
	return out, err
}

// WaitJob polls a job's status every interval (≤0 means 50ms) until it
// leaves the running state or ctx expires.
func (c *Client) WaitJob(ctx context.Context, id string, interval time.Duration) (JobStatus, error) {
	if interval <= 0 {
		interval = 50 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		st, err := c.Job(ctx, id)
		if err != nil {
			return JobStatus{}, err
		}
		if st.State != "running" {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-t.C:
		}
	}
}

// StreamJob (re)attaches to a job's NDJSON stream
// (GET /v1/jobs/{id}/stream): every line produced so far replays, then
// the live run is followed. onProgress, when non-nil, receives each
// progress line; the terminal line is returned with exactly one of
// result/study non-nil.
func (c *Client) StreamJob(ctx context.Context, id string, onProgress func(ProgressLine)) (result *ResultLine, study *StudyLine, err error) {
	end, err := c.stream(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id)+"/stream", nil, onProgress)
	if err != nil {
		return nil, nil, err
	}
	return end.result, end.study, nil
}

// Metrics fetches the raw Prometheus text exposition of GET /metrics.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", apiError(resp)
	}
	b, err := io.ReadAll(resp.Body)
	return string(b), err
}

// streamEnd is the decoded terminal line of an NDJSON stream.
type streamEnd struct {
	kind   string
	result *ResultLine
	study  *StudyLine
}

// stream issues an NDJSON request and decodes the line protocol:
// progress lines go to onProgress, an error line becomes an error, and
// the terminal result/study line is returned. A stream that ends without
// a terminal line (server death mid-run) is an error, not a silent nil.
func (c *Client) stream(ctx context.Context, method, path string, body io.Reader, onProgress func(ProgressLine)) (streamEnd, error) {
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return streamEnd{}, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return streamEnd{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return streamEnd{}, apiError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	for sc.Scan() {
		var kind struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(sc.Bytes(), &kind); err != nil {
			return streamEnd{}, fmt.Errorf("physchedd: bad NDJSON line %q: %w", sc.Text(), err)
		}
		switch kind.Type {
		case "progress":
			var p ProgressLine
			if err := json.Unmarshal(sc.Bytes(), &p); err != nil {
				return streamEnd{}, err
			}
			if onProgress != nil {
				onProgress(p)
			}
		case "result":
			var r ResultLine
			if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
				return streamEnd{}, err
			}
			return streamEnd{kind: "result", result: &r}, nil
		case "study":
			var s StudyLine
			if err := json.Unmarshal(sc.Bytes(), &s); err != nil {
				return streamEnd{}, err
			}
			return streamEnd{kind: "study", study: &s}, nil
		case "error":
			var e ErrorLine
			if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
				return streamEnd{}, err
			}
			return streamEnd{}, fmt.Errorf("physchedd: stream error: %s", e.Error)
		default:
			return streamEnd{}, fmt.Errorf("physchedd: unexpected stream line type %q", kind.Type)
		}
	}
	if err := sc.Err(); err != nil {
		return streamEnd{}, err
	}
	return streamEnd{}, fmt.Errorf("physchedd: stream ended without a terminal line")
}

// StudyReport fetches a finished study's report by study hash.
func (c *Client) StudyReport(ctx context.Context, hash string) (*StudyLine, error) {
	var out StudyLine
	err := c.do(ctx, http.MethodGet, "/v1/studies/"+url.PathEscape(hash), nil, &out)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// Studies lists one page of retained study reports.
func (c *Client) Studies(ctx context.Context, p Page) (StudyList, error) {
	var out StudyList
	err := c.do(ctx, http.MethodGet, "/v1/studies"+encodeQuery(p.query()), nil, &out)
	return out, err
}

// encodeQuery renders a query string with its leading "?", or "" when
// empty — so paths without parameters stay byte-identical to the
// hand-written form.
func encodeQuery(q url.Values) string {
	if len(q) == 0 {
		return ""
	}
	return "?" + q.Encode()
}
