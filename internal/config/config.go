// Package config loads simulation scenarios from JSON files, so batch
// studies can be versioned and replayed without recompiling. The schema is
// a friendly layer over runner.Scenario: parameters default to the
// calibrated paper preset and are overridden field by field.
package config

import (
	"encoding/json"
	"fmt"
	"io"

	"physched/internal/model"
	"physched/internal/runner"
	"physched/internal/sched"
)

// PolicySpec selects a scheduling policy by name plus its parameters.
type PolicySpec struct {
	// Name: farm | splitting | cacheoriented | outoforder | replication |
	// delayed | adaptive | partitioned | affinefarm.
	Name string `json:"name"`
	// DelayHours is the delayed policy's period, in hours.
	DelayHours float64 `json:"delay_hours,omitempty"`
	// StripeEvents is the stripe size for delayed/adaptive policies.
	StripeEvents int64 `json:"stripe_events,omitempty"`
	// MaxWaitHours overrides the out-of-order aging limit (default 48 h).
	MaxWaitHours float64 `json:"max_wait_hours,omitempty"`
}

// New instantiates the policy described by the spec.
func (ps PolicySpec) New() (sched.Policy, error) {
	switch ps.Name {
	case "farm":
		return sched.NewFarm(), nil
	case "splitting":
		return sched.NewSplitting(), nil
	case "cacheoriented":
		return sched.NewCacheOriented(), nil
	case "outoforder", "replication":
		var p *sched.OutOfOrder
		if ps.Name == "replication" {
			p = sched.NewReplication()
		} else {
			p = sched.NewOutOfOrder()
		}
		if ps.MaxWaitHours > 0 {
			p.MaxWait = ps.MaxWaitHours * model.Hour
		}
		return p, nil
	case "delayed":
		stripe := ps.StripeEvents
		if stripe == 0 {
			stripe = sched.DefaultStripe
		}
		return sched.NewDelayed(ps.DelayHours*model.Hour, stripe), nil
	case "adaptive":
		stripe := ps.StripeEvents
		if stripe == 0 {
			stripe = sched.DefaultStripe
		}
		return sched.NewAdaptive(stripe), nil
	case "partitioned":
		return sched.NewPartitioned(), nil
	case "affinefarm":
		return sched.NewAffineFarm(), nil
	case "":
		return nil, fmt.Errorf("config: policy name missing")
	}
	return nil, fmt.Errorf("config: unknown policy %q", ps.Name)
}

// Scenario is the JSON schema of one simulation scenario.
type Scenario struct {
	// Preset is "calibrated" (default) or "stated".
	Preset string `json:"preset,omitempty"`

	// Cluster overrides; zero values keep the preset's.
	Nodes         int     `json:"nodes,omitempty"`
	CacheGB       int64   `json:"cache_gb,omitempty"`
	MeanJobEvents int64   `json:"mean_job_events,omitempty"`
	DataspaceGB   int64   `json:"dataspace_gb,omitempty"`
	HotWeight     float64 `json:"hot_weight,omitempty"` // -1 disables hotspots

	Policy PolicySpec `json:"policy"`

	LoadJobsPerHour float64 `json:"load_jobs_per_hour"`
	Seed            int64   `json:"seed,omitempty"`
	WarmupJobs      int     `json:"warmup_jobs,omitempty"`
	MeasureJobs     int     `json:"measure_jobs,omitempty"`
	OverloadBacklog int64   `json:"overload_backlog,omitempty"`
	DelayIncluded   bool    `json:"delay_included,omitempty"`
}

// Parse reads a JSON scenario.
func Parse(r io.Reader) (Scenario, error) {
	var s Scenario
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Scenario{}, fmt.Errorf("config: %w", err)
	}
	return s, nil
}

// Build converts the JSON scenario into a runnable one, validating every
// field.
func (s Scenario) Build() (runner.Scenario, error) {
	var params model.Params
	switch s.Preset {
	case "", "calibrated":
		params = model.PaperCalibrated()
	case "stated":
		params = model.PaperStated()
	default:
		return runner.Scenario{}, fmt.Errorf("config: unknown preset %q", s.Preset)
	}
	if s.Nodes > 0 {
		params.Nodes = s.Nodes
	}
	if s.CacheGB > 0 {
		params.CacheBytes = s.CacheGB * model.GB
	}
	if s.MeanJobEvents > 0 {
		params.MeanJobEvents = s.MeanJobEvents
	}
	if s.DataspaceGB > 0 {
		params.DataspaceBytes = s.DataspaceGB * model.GB
	}
	switch {
	case s.HotWeight < 0:
		params.HotWeight = 0
	case s.HotWeight > 0:
		params.HotWeight = s.HotWeight
	}
	if err := params.Validate(); err != nil {
		return runner.Scenario{}, err
	}
	if s.LoadJobsPerHour <= 0 {
		return runner.Scenario{}, fmt.Errorf("config: load_jobs_per_hour must be positive")
	}
	// Validate the policy spec once upfront.
	if _, err := s.Policy.New(); err != nil {
		return runner.Scenario{}, err
	}
	spec := s.Policy
	return runner.Scenario{
		Params: params,
		NewPolicy: func() sched.Policy {
			p, err := spec.New()
			if err != nil {
				panic(err) // validated above
			}
			return p
		},
		Load:            s.LoadJobsPerHour,
		Seed:            s.Seed,
		WarmupJobs:      s.WarmupJobs,
		MeasureJobs:     s.MeasureJobs,
		OverloadBacklog: s.OverloadBacklog,
		DelayIncluded:   s.DelayIncluded,
	}, nil
}
