package sched

import (
	"math/rand"
	"testing"

	"physched/internal/dataspace"
	"physched/internal/job"
	"physched/internal/model"
)

// TestOutOfOrderWorkConservation drives the out-of-order policy with a
// random arrival stream and checks, after every scheduling action, the
// policy's core queue invariant: a node is never idle while subjobs wait
// in its own queue, and never idle while the no-cached-data queue holds
// work large enough to run. Violations would silently waste capacity and
// show up only as inflated waiting times, so they are asserted directly.
func TestOutOfOrderWorkConservation(t *testing.T) {
	pol := NewOutOfOrder()
	pol.MaxWait = 6 * model.Hour
	h := newHarness(t, pol, nil)
	rng := rand.New(rand.NewSource(13))

	check := func(step int) {
		for _, n := range h.c.Nodes() {
			if !n.Idle() {
				continue
			}
			if !pol.nodeQ[n.ID].Empty() {
				t.Fatalf("step %d: node %d idle with %d subjobs in its queue",
					step, n.ID, pol.nodeQ[n.ID].Len())
			}
			if !pol.priority.Empty() {
				t.Fatalf("step %d: node %d idle with priority work queued", step, n.ID)
			}
			if !pol.noCache.Empty() {
				t.Fatalf("step %d: node %d idle with %d uncached subjobs queued",
					step, n.ID, pol.noCache.Len())
			}
		}
	}

	var jobs []*job.Job
	for step := 0; step < 600; step++ {
		h.eng.RunUntil(h.eng.Now() + rng.Float64()*400)
		start := rng.Int63n(90_000)
		length := 100 + rng.Int63n(4_000)
		if start+length > 100_000 {
			start = 100_000 - length
		}
		jobs = append(jobs, h.submit(dataspace.Iv(start, start+length)))
		check(step)
	}
	h.eng.Run()
	for _, j := range jobs {
		if !j.Finished {
			t.Fatalf("job %d never finished", j.ID)
		}
		if j.Processed != j.Events() {
			t.Fatalf("job %d processed %d of %d events", j.ID, j.Processed, j.Events())
		}
	}
}
