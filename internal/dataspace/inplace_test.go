package dataspace

import (
	"math/rand"
	"testing"
)

// TestInPlaceMatchesValueOps drives the in-place/append API and the
// value-style API through the same randomised operation sequence and
// requires identical canonical state and query results at every step.
func TestInPlaceMatchesValueOps(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var inPlace Set
		value := Set{}
		randIv := func() Interval {
			a := rng.Int63n(1000)
			return Iv(a, a+rng.Int63n(100)+1)
		}
		equal := func(a, b Set) bool {
			ai, bi := a.Intervals(), b.Intervals()
			if len(ai) != len(bi) {
				return false
			}
			for i := range ai {
				if ai[i] != bi[i] {
					return false
				}
			}
			return true
		}
		for op := 0; op < 500; op++ {
			iv := randIv()
			if rng.Intn(3) > 0 {
				inPlace.AddInPlace(iv)
				value = value.Add(iv)
			} else {
				inPlace.RemoveInPlace(iv)
				value = value.Remove(iv)
			}
			if !equal(inPlace, value) {
				t.Fatalf("seed %d op %d: in-place %v != value %v", seed, op, inPlace, value)
			}
			q := randIv()
			if got, want := inPlace.FirstRunIn(q), value.IntersectInterval(q); got.Empty() != want.Empty() ||
				(!got.Empty() && got != want.Intervals()[0]) {
				t.Fatalf("seed %d op %d: FirstRunIn(%v) = %v, want first of %v", seed, op, q, got, want)
			}
			if got, want := inPlace.IntersectLen(q), value.IntersectInterval(q).Len(); got != want {
				t.Fatalf("seed %d op %d: IntersectLen(%v) = %d, want %d", seed, op, q, got, want)
			}
			gaps := inPlace.AppendGaps(q, nil)
			wantGaps := value.SubtractFrom(q).Intervals()
			if len(gaps) != len(wantGaps) {
				t.Fatalf("seed %d op %d: AppendGaps(%v) = %v, want %v", seed, op, q, gaps, wantGaps)
			}
			for i := range gaps {
				if gaps[i] != wantGaps[i] {
					t.Fatalf("seed %d op %d: AppendGaps(%v) = %v, want %v", seed, op, q, gaps, wantGaps)
				}
			}
			pieces := inPlace.AppendPartition(q, nil)
			wantPieces := value.Partition(q)
			if len(pieces) != len(wantPieces) {
				t.Fatalf("seed %d op %d: AppendPartition(%v) = %v, want %v", seed, op, q, pieces, wantPieces)
			}
			for i := range pieces {
				if pieces[i] != wantPieces[i] {
					t.Fatalf("seed %d op %d: AppendPartition(%v) = %v, want %v", seed, op, q, pieces, wantPieces)
				}
			}
		}
		inPlace.Reset()
		if !inPlace.Empty() {
			t.Fatalf("seed %d: Reset left %v", seed, inPlace)
		}
	}
}
