package sched

import (
	"physched/internal/cluster"
	"physched/internal/dataspace"
	"physched/internal/job"
)

// Splitting is the job-splitting policy of Table 1: jobs are split into
// subjobs across idle nodes so the maximum possible number of nodes is busy
// at all times, but node disks are not used as caches — every event is
// streamed from tertiary storage. Jobs start in FCFS order; an arriving job
// takes one node away from the running job with the largest
// nodes-per-remaining-event ratio when nothing is idle.
type Splitting struct {
	base
	queue   jobFIFO
	running []*job.Job // jobs started and not finished, in start order

	idleScratch []*cluster.Node
	partScratch []dataspace.Interval
}

// NewSplitting returns the job-splitting policy.
func NewSplitting() *Splitting { return &Splitting{} }

func (*Splitting) Name() string { return "splitting" }

func (*Splitting) ClusterConfig() cluster.Config { return cluster.Config{} }

func (s *Splitting) JobArrived(j *job.Job) {
	s.idleScratch = s.c.AppendIdle(s.idleScratch[:0])
	if idle := s.idleScratch; len(idle) > 0 {
		s.startOnIdle(j, idle)
		return
	}
	if donor := s.donorNode(); donor != nil {
		// Suspend one subjob of the most over-provisioned job and give the
		// freed node to the new job (Table 1, second bullet).
		if rem := s.c.Preempt(donor); rem != nil {
			rem.Job.Suspended = append(rem.Job.Suspended, rem)
		}
		s.track(j)
		s.c.Dispatch(donor, s.arena().NewSubjob(j, j.Range, -1))
		return
	}
	s.queue.Push(j)
}

// startOnIdle splits j across the idle nodes in equal parts.
func (s *Splitting) startOnIdle(j *job.Job, idle []*cluster.Node) {
	s.track(j)
	s.partScratch = job.AppendSplitEqual(s.partScratch[:0], j.Range, len(idle), s.minSize())
	for i, iv := range s.partScratch {
		s.c.Dispatch(idle[i], s.arena().NewSubjob(j, iv, -1))
	}
}

// donorNode picks the node to take from the running job with the largest
// number of nodes per event still to process; nil when every running job
// holds a single node.
func (s *Splitting) donorNode() *cluster.Node {
	var bestJob *job.Job
	var bestRatio float64
	for _, j := range s.running {
		if j.Running < 2 {
			continue
		}
		rem := j.Remaining()
		if rem <= 0 {
			continue
		}
		ratio := float64(j.Running) / float64(rem)
		if bestJob == nil || ratio > bestRatio {
			bestJob, bestRatio = j, ratio
		}
	}
	if bestJob == nil {
		return nil
	}
	// Among the nodes running bestJob, free the one with the most remaining
	// work, so the suspended chunk is worth resuming later.
	var donor *cluster.Node
	var donorRem int64
	for _, n := range s.c.Nodes() {
		if r := n.Running(); r != nil && r.Job == bestJob {
			if rem := s.c.RemainingEvents(n); donor == nil || rem > donorRem {
				donor, donorRem = n, rem
			}
		}
	}
	return donor
}

func (s *Splitting) SubjobDone(n *cluster.Node, sj *job.Subjob) {
	s.prune()
	j := sj.Job
	if j.Finished {
		s.untrack(j)
		// Job end (Table 1): first queued job gets the node, whole.
		if !s.queue.Empty() {
			nj := s.queue.Pop()
			s.track(nj)
			s.c.Dispatch(n, s.arena().NewSubjob(nj, nj.Range, -1))
			return
		}
	} else if len(j.Suspended) > 0 {
		// Subjob end: resume a suspended subjob of the same job.
		sub := j.Suspended[len(j.Suspended)-1]
		j.Suspended = j.Suspended[:len(j.Suspended)-1]
		s.c.Dispatch(n, sub)
		return
	}
	s.allocateToRunning(n)
}

// allocateToRunning gives an idle node to already admitted work: first any
// suspended subjob (oldest job first), then a half of the largest running
// subjob in the cluster. The node stays idle only when no splittable work
// exists.
func (s *Splitting) allocateToRunning(n *cluster.Node) {
	for _, j := range s.running {
		if len(j.Suspended) > 0 {
			sub := j.Suspended[len(j.Suspended)-1]
			j.Suspended = j.Suspended[:len(j.Suspended)-1]
			s.c.Dispatch(n, sub)
			return
		}
	}
	var donor *cluster.Node
	var donorRem int64
	for _, m := range s.c.Nodes() {
		if m.Idle() {
			continue
		}
		if rem := s.c.RemainingEvents(m); rem > donorRem {
			donor, donorRem = m, rem
		}
	}
	if donor == nil || donorRem/2 < s.minSize() {
		return
	}
	if tail := s.c.SplitRunning(donor, donorRem/2, s.minSize()); tail != nil {
		tail.Origin = -1
		s.c.Dispatch(n, tail)
	}
}

func (s *Splitting) track(j *job.Job) { s.running = append(s.running, j) }

// prune drops jobs that finished without passing through SubjobDone (a
// preemption can complete a job's last events).
func (s *Splitting) prune() {
	kept := s.running[:0]
	for _, j := range s.running {
		if !j.Finished {
			kept = append(kept, j)
		}
	}
	s.running = kept
}

func (s *Splitting) untrack(j *job.Job) {
	for i, r := range s.running {
		if r == j {
			s.running = append(s.running[:i], s.running[i+1:]...)
			return
		}
	}
}
