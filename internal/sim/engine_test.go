package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEventsRunInTimeOrder(t *testing.T) {
	e := New(1)
	var order []float64
	times := []float64{5, 1, 3, 2, 4}
	for _, tm := range times {
		tm := tm
		e.At(tm, func() { order = append(order, tm) })
	}
	e.Run()
	if !sort.Float64sAreSorted(order) {
		t.Errorf("events ran out of order: %v", order)
	}
	if len(order) != len(times) {
		t.Errorf("ran %d events, want %d", len(order), len(times))
	}
	if e.Now() != 5 {
		t.Errorf("final time = %v, want 5", e.Now())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	e := New(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(7, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("simultaneous events not FIFO: %v", order)
		}
	}
}

func TestCancel(t *testing.T) {
	e := New(1)
	ran := false
	ev := e.At(1, func() { ran = true })
	ev.Cancel()
	e.Run()
	if ran {
		t.Error("cancelled event ran")
	}
	if !ev.Cancelled() {
		t.Error("Cancelled() = false after Cancel")
	}
	ev.Cancel() // double-cancel is a no-op
}

func TestAfterAndNestedScheduling(t *testing.T) {
	e := New(1)
	var hits []float64
	e.After(10, func() {
		hits = append(hits, e.Now())
		e.After(5, func() { hits = append(hits, e.Now()) })
	})
	e.Run()
	if len(hits) != 2 || hits[0] != 10 || hits[1] != 15 {
		t.Errorf("hits = %v, want [10 15]", hits)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := New(1)
	e.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(5, func() {})
	})
	e.Run()
}

func TestRunUntil(t *testing.T) {
	e := New(1)
	var ran []float64
	for _, tm := range []float64{1, 2, 3, 4, 5} {
		tm := tm
		e.At(tm, func() { ran = append(ran, tm) })
	}
	e.RunUntil(3)
	if len(ran) != 3 {
		t.Errorf("RunUntil(3) ran %d events, want 3", len(ran))
	}
	if e.Now() != 3 {
		t.Errorf("Now = %v, want 3", e.Now())
	}
	if e.Pending() != 2 {
		t.Errorf("Pending = %d, want 2", e.Pending())
	}
	e.RunUntil(100)
	if len(ran) != 5 || e.Now() != 100 {
		t.Errorf("after RunUntil(100): ran=%d now=%v", len(ran), e.Now())
	}
}

func TestRunUntilSkipsCancelledHead(t *testing.T) {
	e := New(1)
	ev := e.At(1, func() { t.Error("cancelled event ran") })
	ev.Cancel()
	ok := false
	e.At(2, func() { ok = true })
	e.RunUntil(5)
	if !ok {
		t.Error("live event after cancelled head did not run")
	}
}

func TestDeterminism(t *testing.T) {
	run := func(seed int64) []float64 {
		e := New(seed)
		var out []float64
		var tick func()
		tick = func() {
			out = append(out, e.Now())
			if len(out) < 100 {
				e.After(e.Rand().Float64()*10, tick)
			}
		}
		e.After(0, tick)
		e.Run()
		return out
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic at step %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestHeapPropertyRandomised(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := New(seed)
		var ran []float64
		n := 50 + rng.Intn(100)
		for i := 0; i < n; i++ {
			tm := rng.Float64() * 1000
			e.At(tm, func() { ran = append(ran, e.Now()) })
		}
		e.Run()
		return len(ran) == n && sort.Float64sAreSorted(ran)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSteps(t *testing.T) {
	e := New(1)
	for i := 0; i < 5; i++ {
		e.At(float64(i), func() {})
	}
	e.Run()
	if e.Steps() != 5 {
		t.Errorf("Steps = %d, want 5", e.Steps())
	}
}

// BenchmarkEngineHotLoop exercises the engine the way a simulation does:
// a steady window of pending events, each completion scheduling a
// successor. One op is one executed event.
func BenchmarkEngineHotLoop(b *testing.B) {
	b.ReportAllocs()
	e := New(1)
	remaining := b.N
	var tick func()
	tick = func() {
		if remaining > 0 {
			remaining--
			e.After(e.Rand().Float64(), tick)
		}
	}
	for i := 0; i < 32 && remaining > 0; i++ {
		remaining--
		e.After(e.Rand().Float64(), tick)
	}
	b.ResetTimer()
	e.Run()
}

func BenchmarkEngineThroughput(b *testing.B) {
	e := New(1)
	var tick func()
	n := 0
	tick = func() {
		n++
		if n < b.N {
			e.After(1, tick)
		}
	}
	e.After(1, tick)
	b.ResetTimer()
	e.Run()
}
