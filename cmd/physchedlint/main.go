// Command physchedlint is the repo's multichecker: it runs the
// internal/analysis suite — detrand, walltime, maporder, hotalloc,
// wirecanon, physcheddirective — over the given package patterns and
// exits nonzero on any finding. CI runs it over ./...; run it locally
// the same way:
//
//	go run ./cmd/physchedlint ./...
//
// Each analyzer is scoped by analysis.Rules (determinism checks on the
// sim-core packages, wire checks on spec/opt, annotation checks
// everywhere); see DESIGN.md §11 for the contracts and the //physched:
// annotation grammar.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"physched/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("physchedlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the analyzers and exit")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: physchedlint [-list] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range analysis.Analyzers() {
			fmt.Fprintf(stdout, "%-18s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	diags, err := analysis.Lint(".", patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "physchedlint: %v\n", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintf(stdout, "%s\n", d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "physchedlint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
