package spec

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"

	"physched/internal/lab"
)

// Variant is one declarative grid variant: a label plus whole-field
// overlays of the base spec. A nil field keeps the base's value; a
// non-nil one replaces the base's corresponding section entirely (no
// field-by-field merging, so a variant's meaning never depends on which
// base fields happen to be set).
type Variant struct {
	Label    string    `json:"label"`
	Policy   *Policy   `json:"policy,omitempty"`
	Params   *Params   `json:"params,omitempty"`
	Workload *Workload `json:"workload,omitempty"`
	Faults   *Faults   `json:"faults,omitempty"`
}

// Grid is a declarative scenario space — a base spec crossed with
// variants, a load axis and a seed axis — the serialisable counterpart of
// lab.Grid. Empty axes default to the base spec's load and seed.
type Grid struct {
	Base     Spec      `json:"base"`
	Variants []Variant `json:"variants,omitempty"`
	Loads    []float64 `json:"loads,omitempty"`
	Seeds    []int64   `json:"seeds,omitempty"`
}

// ParseGrid reads one JSON grid spec, rejecting unknown fields.
func ParseGrid(r io.Reader) (Grid, error) {
	var g Grid
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&g); err != nil {
		return Grid{}, fmt.Errorf("spec: %w", err)
	}
	return g, nil
}

// loads returns the effective load axis.
func (g Grid) loads() []float64 {
	if len(g.Loads) == 0 {
		return []float64{g.Base.Load}
	}
	return g.Loads
}

// seeds returns the effective seed axis.
func (g Grid) seeds() []int64 {
	if len(g.Seeds) == 0 {
		return []int64{g.Base.Seed}
	}
	return g.Seeds
}

// variantSpec resolves variant vi against the base (whole-field overlay).
// vi indexes lab.Cell.Variant: with no variants it is always 0, the base.
func (g Grid) variantSpec(vi int) Spec {
	s := g.Base
	if len(g.Variants) == 0 {
		return s
	}
	v := g.Variants[vi]
	if v.Policy != nil {
		s.Policy = *v.Policy
	}
	if v.Params != nil {
		s.Params = *v.Params
	}
	if v.Workload != nil {
		s.Workload = *v.Workload
	}
	if v.Faults != nil {
		s.Faults = *v.Faults
	}
	return s
}

// withBaseLoad substitutes the first axis load when the base spec leaves
// Load unset — a grid with a load axis does not need a base load.
func (g Grid) withBaseLoad(s Spec) Spec {
	if s.Load == 0 && len(g.Loads) > 0 {
		s.Load = g.Loads[0]
	}
	return s
}

// Validate reports the first problem with the grid: an invalid base or
// variant spec, a missing or duplicate variant label, or a non-positive
// axis load.
func (g Grid) Validate() error {
	for i, l := range g.Loads {
		if l <= 0 {
			return fmt.Errorf("spec: loads[%d] = %v must be positive", i, l)
		}
	}
	if err := g.withBaseLoad(g.Base).Validate(); err != nil {
		return fmt.Errorf("spec: base: %w", err)
	}
	seen := map[string]bool{}
	for i := range g.Variants {
		label := g.Variants[i].Label
		if label == "" {
			return fmt.Errorf("spec: variants[%d] needs a label", i)
		}
		if seen[label] {
			return fmt.Errorf("spec: duplicate variant label %q", label)
		}
		seen[label] = true
		if err := g.withBaseLoad(g.variantSpec(i)).Validate(); err != nil {
			return fmt.Errorf("spec: variant %q: %w", label, err)
		}
	}
	return nil
}

// CellSpec resolves the complete, self-contained spec of one grid cell:
// the variant overlay applied to the base with the cell's load and seed
// bound. Its hash is the cell's result-cache key, so identical cells of
// different grids share cached results.
func (g Grid) CellSpec(c lab.Cell) Spec {
	s := g.variantSpec(c.Variant)
	s.Load = c.Scenario.Load
	s.Seed = c.Scenario.Seed
	return s
}

// Keys adapts the grid to lab.Options.Keys: the content key of every cell
// for content-addressed result caching.
func (g Grid) Keys() func(lab.Cell) (string, bool) {
	return func(c lab.Cell) (string, bool) {
		h, err := g.CellSpec(c).Hash()
		if err != nil {
			return "", false
		}
		return h, true
	}
}

// AggregateKey is the content key of the replica aggregate at (variant,
// loadIdx): the hash of the resolved cell spec with the whole seed axis
// folded in instead of a single seed.
func (g Grid) AggregateKey(variant, loadIdx int) (string, error) {
	s := g.variantSpec(variant)
	s.Load = g.loads()[loadIdx]
	s.Seed = 0
	c, err := s.Canonical()
	if err != nil {
		return "", err
	}
	payload, err := json.Marshal(struct {
		Spec  json.RawMessage `json:"spec"`
		Seeds []int64         `json:"seeds"`
	}{Spec: c, Seeds: g.seeds()})
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(payload)
	return hex.EncodeToString(sum[:]), nil
}

// normalize normalises the base and every variant overlay.
func (g Grid) normalize() Grid {
	g.Base = g.Base.normalize()
	if len(g.Variants) > 0 {
		vs := make([]Variant, len(g.Variants))
		copy(vs, g.Variants)
		for i, v := range vs {
			if v.Params != nil {
				p := v.Params.normalize()
				vs[i].Params = &p
			}
			if v.Workload != nil {
				w := v.Workload.normalize()
				vs[i].Workload = &w
			}
			if v.Faults != nil {
				f := v.Faults.normalize()
				vs[i].Faults = &f
			}
		}
		g.Variants = vs
	}
	return g
}

// Canonical returns the grid's canonical encoding (see Spec.Canonical).
func (g Grid) Canonical() ([]byte, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return json.Marshal(g.normalize())
}

// Hash is the hex SHA-256 of the canonical encoding — the grid's content
// address and its physchedd handle.
func (g Grid) Hash() (string, error) {
	c, err := g.Canonical()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(c)
	return hex.EncodeToString(sum[:]), nil
}

// Compile turns the declarative grid into an executable lab.Grid whose
// variants overlay complete compiled scenarios (load and seed still bound
// per cell by the lab). Pass Keys() and a cache via lab.Options to skip
// cells already simulated.
func (g Grid) Compile() (lab.Grid, error) {
	if err := g.Validate(); err != nil {
		return lab.Grid{}, err
	}
	base, err := g.withBaseLoad(g.Base).Scenario()
	if err != nil {
		return lab.Grid{}, err
	}
	variants := make([]lab.Variant, 0, len(g.Variants))
	for i := range g.Variants {
		sc, err := g.withBaseLoad(g.variantSpec(i)).Scenario()
		if err != nil {
			return lab.Grid{}, fmt.Errorf("spec: variant %q: %w", g.Variants[i].Label, err)
		}
		variants = append(variants, lab.Variant{
			Label: g.Variants[i].Label,
			Mutate: func(s *lab.Scenario) {
				load, seed := s.Load, s.Seed
				*s = sc
				s.Load, s.Seed = load, seed
			},
		})
	}
	return lab.Grid{
		Base:     base,
		Variants: variants,
		Loads:    g.Loads,
		Seeds:    g.Seeds,
	}, nil
}
