package lab

import (
	"context"
	"runtime"
	"sync"

	"physched/internal/sched"
	"physched/internal/trace"
)

// Variant is one line of a figure: a policy constructor plus optional
// scenario tweaks (e.g. cache size). A nil NewPolicy keeps the base
// scenario's policy; Mutate runs after the load and seed are bound, so it
// may override any field, including both.
type Variant struct {
	Label     string
	NewPolicy func() sched.Policy
	Mutate    func(*Scenario)
}

// Curve is a named series of sweep results (one figure line).
type Curve struct {
	Label   string
	Results []Result
}

// Grid is a scenario space: a base scenario crossed with policy/parameter
// variants, a load axis and a seed (replication) axis. An empty axis
// defaults to the base scenario's value, so a Grid with only Loads set is
// a classic sweep and a Grid with only Seeds set is a replication study.
type Grid struct {
	Base     Scenario
	Variants []Variant
	Loads    []float64
	Seeds    []int64
}

// Options configure grid execution.
type Options struct {
	// Workers bounds concurrent runs; ≤0 means runtime.GOMAXPROCS(0) and
	// 1 forces serial execution (results are identical either way).
	// Ignored when Pool is set.
	Workers int
	// Pool, when non-nil, executes cells on this shared, long-lived
	// worker pool instead of a per-call one; the pool's own bound then
	// applies and Workers is ignored. Concurrent Execute calls on one
	// pool share its bound, with cells interleaved fairly across grids.
	// Results are byte-identical either way.
	Pool *Pool
	// Context cancels execution between runs; see Pool.Run.
	Context context.Context
	// Progress, when non-nil, is invoked after every completed run,
	// serialised by the grid (no locking needed in the callback).
	Progress func(ProgressUpdate)
	// KeepCollectors retains each Result's full metrics.Collector. Off by
	// default: a grid of hundreds of runs must not pin every job record.
	KeepCollectors bool
	// Cache, when non-nil together with Keys, serves completed cells from
	// a content-addressed result store and saves fresh results back to it,
	// so re-executing a grid skips every cell already simulated anywhere
	// under the same key. internal/resultcache provides memory and disk
	// implementations.
	Cache ResultCache
	// Keys derives a cell's content key — a hash of its fully resolved
	// declarative spec (see internal/spec). Cells reporting ok == false
	// are uncacheable and always run.
	Keys func(Cell) (key string, ok bool)
	// Trace, when non-nil, selects cells to record: a returned non-nil
	// recorder is attached to the cell's scenario before it runs. Traced
	// cells bypass the result cache entirely — no Get, so a hit cannot
	// silently skip the simulation the trace is supposed to witness, and
	// no Put, because sampling schedules perpetual timer events that can
	// shift the drain point and therefore the result bytes: a traced
	// result must never poison the content-addressed store that the
	// byte-identity contract reads from.
	Trace func(Cell) *trace.Recorder
}

// ResultCache is a content-addressed store of run results, keyed by the
// hash of the canonical spec encoding that produced them. Implementations
// must be safe for concurrent use: grid execution calls them from worker
// goroutines.
type ResultCache interface {
	Get(key string) (Result, bool)
	Put(key string, r Result)
}

// ProgressUpdate reports one completed run of a grid.
type ProgressUpdate struct {
	Done, Total int
	Label       string // variant label
	Load        float64
	Seed        int64
	Overloaded  bool
	// FromCache marks a cell served from Options.Cache instead of being
	// simulated.
	FromCache bool
}

// Cell is one fully resolved run of a grid.
type Cell struct {
	Variant, LoadIdx, SeedIdx int
	Label                     string
	Scenario                  Scenario
}

// RunSet holds a grid's results, indexed like its cells (variant-major,
// then load, then seed).
type RunSet struct {
	Loads   []float64
	Seeds   []int64
	Labels  []string // one per variant
	Cells   []Cell
	Results []Result
	// CacheHits counts the cells served from Options.Cache rather than
	// simulated; a fully warmed cache re-executes zero cells.
	CacheHits int
	// Err is the context error when execution was cancelled; cells not
	// run keep zero Results.
	Err error
}

// variants returns the effective variant list (one implicit variant when
// none is given).
func (g Grid) variants() []Variant {
	if len(g.Variants) == 0 {
		return []Variant{{}}
	}
	return g.Variants
}

// Cells enumerates the grid variant-major, then by load, then by seed —
// the index order of RunSet.Results.
func (g Grid) Cells() []Cell {
	variants := g.variants()
	loads := g.Loads
	if len(loads) == 0 {
		loads = []float64{g.Base.Load}
	}
	seeds := g.Seeds
	if len(seeds) == 0 {
		seeds = []int64{g.Base.Seed}
	}
	cells := make([]Cell, 0, len(variants)*len(loads)*len(seeds))
	for vi, v := range variants {
		for li, load := range loads {
			for si, seed := range seeds {
				s := g.Base
				s.Load = load
				s.Seed = seed
				if v.NewPolicy != nil {
					s.NewPolicy = v.NewPolicy
				}
				if v.Mutate != nil {
					v.Mutate(&s)
				}
				cells = append(cells, Cell{
					Variant: vi, LoadIdx: li, SeedIdx: si,
					Label: v.Label, Scenario: s,
				})
			}
		}
	}
	return cells
}

// Execute runs every cell of the grid on a bounded worker pool and returns
// the results. Results are written to fixed indices derived from the grid
// coordinates, so serial and parallel execution produce byte-identical
// RunSets. The returned error is non-nil only when the context cancelled
// execution; the RunSet then holds the completed prefix-of-work.
func (g Grid) Execute(opts Options) (*RunSet, error) {
	cells := g.Cells()
	rs := &RunSet{
		Loads: g.Loads,
		Seeds: g.Seeds,
		Cells: cells,
	}
	if len(rs.Loads) == 0 {
		rs.Loads = []float64{g.Base.Load}
	}
	if len(rs.Seeds) == 0 {
		rs.Seeds = []int64{g.Base.Seed}
	}
	for _, v := range g.variants() {
		rs.Labels = append(rs.Labels, v.Label)
	}
	rs.Results = make([]Result, len(cells))

	// Content keys are resolved upfront (cheap hashing) so workers only
	// consult the cache, never compute keys concurrently with user code.
	var keys []string
	caching := opts.Cache != nil && opts.Keys != nil
	if caching {
		keys = make([]string, len(cells))
		for i, c := range cells {
			if key, ok := opts.Keys(c); ok {
				keys[i] = key
			}
		}
	}

	var mu sync.Mutex
	completed := 0
	task := func(i int) {
		var rec *trace.Recorder
		if opts.Trace != nil {
			rec = opts.Trace(cells[i])
		}
		var res Result
		fromCache := false
		if caching && keys[i] != "" && rec == nil {
			if hit, ok := opts.Cache.Get(keys[i]); ok {
				res = hit
				res.Scenario = cells[i].Scenario
				res.Collector = nil
				fromCache = true
			}
		}
		if !fromCache {
			sc := cells[i].Scenario
			if rec != nil {
				sc.Trace = rec
			}
			res = Run(sc)
			if !opts.KeepCollectors {
				res.Collector = nil
			}
			if caching && keys[i] != "" && rec == nil {
				opts.Cache.Put(keys[i], res.Stored())
			}
		}
		rs.Results[i] = res
		mu.Lock()
		completed++
		done := completed
		if fromCache {
			rs.CacheHits++
		}
		if opts.Progress != nil {
			opts.Progress(ProgressUpdate{
				Done: done, Total: len(cells),
				Label: cells[i].Label, Load: cells[i].Scenario.Load,
				Seed: cells[i].Scenario.Seed, Overloaded: res.Overloaded,
				FromCache: fromCache,
			})
		}
		mu.Unlock()
	}
	err := runCells(opts, len(cells), task)
	rs.Err = err
	return rs, err
}

// runCells dispatches cell tasks to the shared pool when Options.Pool is
// set, otherwise to an ephemeral per-call pool (serial inline when one
// worker suffices — results are byte-identical on every path).
func runCells(opts Options, n int, task func(int)) error {
	if opts.Pool != nil {
		return opts.Pool.Run(opts.Context, n, task)
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		return runSerial(opts.Context, n, task)
	}
	pool := NewPool(workers)
	defer pool.Close()
	return pool.Run(opts.Context, n, task)
}

// Result returns the result at (variant, load, seed) indices.
func (rs *RunSet) Result(variant, loadIdx, seedIdx int) Result {
	return rs.Results[(variant*len(rs.Loads)+loadIdx)*len(rs.Seeds)+seedIdx]
}

// Aggregate summarises the replicas at (variant, load) across the seed
// axis.
func (rs *RunSet) Aggregate(variant, loadIdx int) Aggregate {
	results := make([]Result, len(rs.Seeds))
	for si := range rs.Seeds {
		results[si] = rs.Result(variant, loadIdx, si)
	}
	return NewAggregate(results)
}

// SustainableLoad returns the highest load in loads that the scenario
// sustains without overload, or zero when none is sustained.
func SustainableLoad(base Scenario, loads []float64, opts Options) float64 {
	rs, _ := Grid{Base: base, Loads: loads}.Execute(opts)
	max := 0.0
	for _, r := range rs.Results {
		if !r.Overloaded && r.Load > max {
			max = r.Load
		}
	}
	return max
}

// Curves flattens the grid into one curve per variant. With a single seed
// the points are the runs themselves; with several, each point is the
// replica mean (metrics averaged over steady replicas, Overloaded when at
// least half the replicas overloaded — the paper cuts curves there).
func (rs *RunSet) Curves() []Curve {
	curves := make([]Curve, len(rs.Labels))
	for vi, label := range rs.Labels {
		points := make([]Result, len(rs.Loads))
		for li := range rs.Loads {
			if len(rs.Seeds) == 1 {
				points[li] = rs.Result(vi, li, 0)
				continue
			}
			points[li] = rs.Aggregate(vi, li).MeanResult()
		}
		curves[vi] = Curve{Label: label, Results: points}
	}
	return curves
}
