package lab

import (
	"testing"

	"physched/internal/cluster"
	"physched/internal/sched"
)

// BenchmarkRun measures one complete out-of-order simulation run (warm-up
// plus measurement window) on the small test cluster — the unit of work
// every sweep, grid and replication fans out over.
func BenchmarkRun(b *testing.B) {
	b.ReportAllocs()
	p := smallParams()
	s := policyScenario(func() sched.Policy { return sched.NewOutOfOrder() }, 0.5*p.FarmMaxLoad())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Run(s)
	}
}

// BenchmarkRunFaults is BenchmarkRun under heavy node churn: it prices
// the fault path — failure/repair events, subjob kills, requeues and
// cache rebuilds — against the fault-free baseline snapshot.
func BenchmarkRunFaults(b *testing.B) {
	b.ReportAllocs()
	p := smallParams()
	s := policyScenario(func() sched.Policy { return sched.NewOutOfOrder() }, 0.5*p.FarmMaxLoad())
	s.Faults = cluster.FaultModel{MTBFHours: 24, RepairHours: 2, CacheLoss: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Run(s)
	}
}
