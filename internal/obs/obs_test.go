package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestLoggerUsesInjectedClock(t *testing.T) {
	epoch := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	var buf bytes.Buffer
	l := NewLogger(&buf, func() time.Time { return epoch }, slog.LevelInfo)
	l.Info("hello", "k", "v")
	var line map[string]any
	if err := json.Unmarshal(buf.Bytes(), &line); err != nil {
		t.Fatalf("log line is not JSON: %q", buf.String())
	}
	ts, _ := line["time"].(string)
	if !strings.HasPrefix(ts, "2026-08-08T12:00:00") {
		t.Errorf("time = %q, want the injected clock's instant", ts)
	}
	if line["msg"] != "hello" || line["k"] != "v" {
		t.Errorf("line = %v", line)
	}
}

func TestSanitizeRequestID(t *testing.T) {
	cases := []struct {
		in   string
		want string
		ok   bool
	}{
		{"abc123", "abc123", true},
		{"has spaces\nand\tctl", "hasspacesandctl", true},
		{`inj"ect\me`, "injectme", true},
		{"", "", false},
		{"\n\t ", "", false},
		{strings.Repeat("x", 200), strings.Repeat("x", 64), true},
	}
	for _, tc := range cases {
		got, ok := SanitizeRequestID(tc.in)
		if got != tc.want || ok != tc.ok {
			t.Errorf("SanitizeRequestID(%q) = (%q, %v), want (%q, %v)", tc.in, got, ok, tc.want, tc.ok)
		}
	}
}

func TestRequestIDContextRoundTrip(t *testing.T) {
	ctx := WithRequestID(context.Background(), "rid1")
	if got := RequestIDFrom(ctx); got != "rid1" {
		t.Fatalf("RequestIDFrom = %q", got)
	}
	if got := RequestIDFrom(context.Background()); got != "" {
		t.Fatalf("empty context RequestIDFrom = %q, want \"\"", got)
	}
}

func TestMiddlewareEchoesAndGeneratesRequestIDs(t *testing.T) {
	mux := http.NewServeMux()
	var seen string
	mux.HandleFunc("GET /x", func(w http.ResponseWriter, r *http.Request) {
		seen = RequestIDFrom(r.Context())
		w.WriteHeader(http.StatusTeapot)
	})
	h := Middleware(mux, MiddlewareConfig{Clock: func() time.Time { return time.Unix(0, 0) }})

	// Supplied ID echoes, reaches the handler, and is sanitized.
	req := httptest.NewRequest("GET", "/x", nil)
	req.Header.Set(RequestIDHeader, "my-id-42")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if got := rec.Header().Get(RequestIDHeader); got != "my-id-42" {
		t.Errorf("echoed ID = %q, want my-id-42", got)
	}
	if seen != "my-id-42" {
		t.Errorf("handler saw ID %q", seen)
	}
	if rec.Code != http.StatusTeapot {
		t.Errorf("status %d passed through wrong", rec.Code)
	}

	// Absent ID: one is generated and echoed.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/x", nil))
	if got := rec.Header().Get(RequestIDHeader); len(got) != 16 {
		t.Errorf("generated ID = %q, want 16 hex chars", got)
	}
}

func TestMiddlewareLogsAndObserves(t *testing.T) {
	epoch := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	now := epoch
	clock := func() time.Time { return now }
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/things/{id}", func(w http.ResponseWriter, r *http.Request) {
		now = now.Add(250 * time.Millisecond) // the handler "takes" 250ms
		w.WriteHeader(http.StatusNotFound)
		w.Write([]byte("nope"))
	})
	var buf bytes.Buffer
	var gotRoute, gotStatus string
	var gotSec float64
	h := Middleware(mux, MiddlewareConfig{
		Clock:  clock,
		Logger: NewLogger(&buf, clock, slog.LevelInfo),
		Observe: func(route, status string, seconds float64) {
			gotRoute, gotStatus, gotSec = route, status, seconds
		},
		Route: func(r *http.Request) string { _, p := mux.Handler(r); return p },
	})
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/things/9", nil))

	if gotRoute != "GET /v1/things/{id}" {
		t.Errorf("observed route %q, want the mux pattern", gotRoute)
	}
	if gotStatus != "404" || gotSec != 0.25 {
		t.Errorf("observed (%s, %g), want (404, 0.25)", gotStatus, gotSec)
	}
	var line map[string]any
	if err := json.Unmarshal(buf.Bytes(), &line); err != nil {
		t.Fatalf("access log line is not JSON: %q", buf.String())
	}
	if line["msg"] != "request" || line["route"] != "GET /v1/things/{id}" ||
		line["status"] != float64(404) || line["request_id"] == "" {
		t.Errorf("access line = %v", line)
	}

	// Unmatched path: route label stays bounded.
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/nope", nil))
	if gotRoute != "unmatched" {
		t.Errorf("unmatched route label = %q", gotRoute)
	}
}

func TestMiddlewarePreservesFlusher(t *testing.T) {
	mux := http.NewServeMux()
	flushed := false
	mux.HandleFunc("GET /s", func(w http.ResponseWriter, r *http.Request) {
		f, ok := w.(http.Flusher)
		if !ok {
			t.Error("middleware dropped http.Flusher")
			return
		}
		w.Write([]byte("line\n"))
		f.Flush()
		flushed = true
	})
	h := Middleware(mux, MiddlewareConfig{Clock: func() time.Time { return time.Unix(0, 0) }})
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/s", nil))
	if !flushed || !rec.Flushed {
		t.Errorf("flush did not reach the underlying writer (handler flushed: %v, recorder flushed: %v)", flushed, rec.Flushed)
	}
}

func TestLoggerFromFallsBackToDiscard(t *testing.T) {
	l := LoggerFrom(context.Background())
	if l == nil {
		t.Fatal("LoggerFrom returned nil")
	}
	l.Info("must not panic")
}
