package experiments

import (
	"encoding/json"
	"testing"

	"physched/internal/lab"
)

// TestFig2SerialEqualsParallel reproduces Figure 2 at Quick quality twice —
// once on a single worker, once on eight — and requires byte-identical
// figures: the lab grid's core determinism guarantee, checked end-to-end
// through a real experiment recipe.
func TestFig2SerialEqualsParallel(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full Quick-scale Figure 2 sweep twice")
	}
	prev := Configure(lab.Options{Workers: 1})
	defer Configure(prev)
	serial := Fig2(Quick, 1)
	Configure(lab.Options{Workers: 8})
	parallel := Fig2(Quick, 1)

	sb, err := json.Marshal(serial)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := json.Marshal(parallel)
	if err != nil {
		t.Fatal(err)
	}
	if string(sb) != string(pb) {
		t.Fatalf("Fig2 serial and parallel runs differ:\nserial:   %s\nparallel: %s", sb, pb)
	}
}

// TestDayNightTiny exercises the day/night study's plumbing: the grid
// must produce every variant, every variant must complete its lowest-load
// point in steady state, and the inhomogeneous variants must genuinely
// differ from their steady baselines (the NewWorkload hook took effect).
// Quantitative burstiness effects are left to Full-scale runs — Quick
// windows are too short to rank sustainable loads reliably.
func TestDayNightTiny(t *testing.T) {
	rows := DayNight(Quick, 1)
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	lowest := map[string]AblationRow{}
	waiting := map[string]float64{}
	for _, r := range rows {
		if cur, ok := lowest[r.Variant]; !ok || r.Load < cur.Load {
			lowest[r.Variant] = r
		}
		if !r.Result.Overloaded {
			waiting[r.Variant] += r.Result.AvgWaiting
		}
	}
	if len(lowest) != 4 {
		t.Fatalf("expected 4 variants, got %d: %v", len(lowest), lowest)
	}
	for v, r := range lowest {
		if r.Result.Overloaded {
			t.Errorf("%s overloaded at its lowest load %.2f", v, r.Load)
		}
	}
	if waiting["farm, steady arrivals"] == waiting["farm, day/night swing 80%"] {
		t.Error("day/night workload produced identical waiting to steady arrivals; NewWorkload hook inert")
	}
}
