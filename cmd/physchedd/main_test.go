package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"physched/client"
	"physched/internal/lab"
	"physched/internal/resultcache"
)

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	return testServerWith(t, serverConfig{Cache: resultcache.NewMemory(), MaxCells: 100})
}

// testServerWith starts a service over cfg, closing the pool and the
// listener with the test.
func testServerWith(t *testing.T, cfg serverConfig) *httptest.Server {
	t.Helper()
	if cfg.Pool == nil {
		cfg.Pool = lab.NewPool(0)
	}
	t.Cleanup(cfg.Pool.Close)
	ts := httptest.NewServer(mustServer(t, cfg).routes())
	t.Cleanup(ts.Close)
	return ts
}

// mustServer builds a server over cfg, failing the test on a config
// error (a state dir that cannot be created, a corrupt journal load).
func mustServer(t *testing.T, cfg serverConfig) *server {
	t.Helper()
	s, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

const gridBody = `{
	"base": {
		"params": {"nodes": 3, "cache_gb": 6, "mean_job_events": 1000, "dataspace_gb": 60},
		"policy": {"name": "outoforder"},
		"load_jobs_per_hour": 1.0,
		"seed": 5,
		"warmup_jobs": 10,
		"measure_jobs": 40
	},
	"variants": [
		{"label": "ooo"},
		{"label": "farm", "policy": {"name": "farm"}}
	],
	"loads": [0.8, 1.1],
	"seeds": [1, 2]
}`

// postGrid POSTs a grid spec and splits the NDJSON stream into progress
// lines and the terminating result line.
func postGrid(t *testing.T, ts *httptest.Server, body string) (progress []progressLine, result resultLine) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/grids", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	sawResult := false
	for sc.Scan() {
		var kind struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(sc.Bytes(), &kind); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		switch kind.Type {
		case "progress":
			var p progressLine
			if err := json.Unmarshal(sc.Bytes(), &p); err != nil {
				t.Fatal(err)
			}
			progress = append(progress, p)
		case "result":
			if err := json.Unmarshal(sc.Bytes(), &result); err != nil {
				t.Fatal(err)
			}
			sawResult = true
		default:
			t.Fatalf("unexpected line type %q", kind.Type)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !sawResult {
		t.Fatal("stream ended without a result line")
	}
	return progress, result
}

// TestGridStreamAndCacheRoundTrip is the service acceptance test: POST a
// grid spec, read streamed progress then the result; POST the same spec
// again and observe zero re-simulated cells with byte-identical results.
func TestGridStreamAndCacheRoundTrip(t *testing.T) {
	ts := testServer(t)

	progress, result := postGrid(t, ts, gridBody)
	const total = 2 * 2 * 2 // variants × loads × seeds
	if len(progress) != total {
		t.Errorf("got %d progress lines, want %d", len(progress), total)
	}
	if last := progress[len(progress)-1]; last.Done != total || last.Total != total {
		t.Errorf("final progress %d/%d, want %d/%d", last.Done, last.Total, total, total)
	}
	if result.GridHash == "" || len(result.Cells) != total {
		t.Fatalf("bad result line: hash=%q cells=%d", result.GridHash, len(result.Cells))
	}
	if result.CacheHits != 0 {
		t.Errorf("first run reported %d cache hits", result.CacheHits)
	}
	if len(result.Aggregates) != 2*2 {
		t.Errorf("got %d aggregates, want 4", len(result.Aggregates))
	}
	for _, c := range result.Cells {
		if len(c.Hash) != 64 {
			t.Errorf("cell hash %q is not a SHA-256", c.Hash)
		}
	}

	progress2, result2 := postGrid(t, ts, gridBody)
	if result2.CacheHits != total {
		t.Errorf("second run re-simulated %d of %d cells; want zero", total-result2.CacheHits, total)
	}
	for _, p := range progress2 {
		if !p.FromCache {
			t.Errorf("second run streamed a non-cache progress line: %+v", p)
		}
	}
	a, _ := json.Marshal(result.Cells)
	b, _ := json.Marshal(result2.Cells)
	if !bytes.Equal(a, b) {
		t.Errorf("cached grid results diverged:\n%s\n%s", b, a)
	}
	if result.GridHash != result2.GridHash {
		t.Errorf("grid hash unstable: %q vs %q", result.GridHash, result2.GridHash)
	}
}

func TestResultsServedByHash(t *testing.T) {
	ts := testServer(t)
	_, result := postGrid(t, ts, gridBody)

	cell := result.Cells[0]
	resp, err := http.Get(ts.URL + "/v1/results/" + cell.Hash)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var got specResponse
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if !got.FromCache || got.Hash != cell.Hash {
		t.Errorf("bad by-hash response: %+v", got)
	}
	a, _ := json.Marshal(cell.Result)
	b, _ := json.Marshal(got.Result)
	if !bytes.Equal(a, b) {
		t.Errorf("by-hash result differs from streamed result:\n%s\n%s", b, a)
	}

	agg := result.Aggregates[0]
	aresp, err := http.Get(ts.URL + "/v1/aggregates/" + agg.Hash)
	if err != nil {
		t.Fatal(err)
	}
	defer aresp.Body.Close()
	if aresp.StatusCode != http.StatusOK {
		t.Errorf("aggregate status %d", aresp.StatusCode)
	}

	miss, err := http.Get(ts.URL + "/v1/results/" + strings.Repeat("0", 64))
	if err != nil {
		t.Fatal(err)
	}
	defer miss.Body.Close()
	if miss.StatusCode != http.StatusNotFound {
		t.Errorf("miss status %d, want 404", miss.StatusCode)
	}
}

func TestSingleSpecRunAndCache(t *testing.T) {
	ts := testServer(t)
	body := `{
		"params": {"nodes": 3, "cache_gb": 6, "mean_job_events": 1000, "dataspace_gb": 60},
		"policy": {"name": "farm"},
		"load_jobs_per_hour": 0.7,
		"seed": 3,
		"warmup_jobs": 10,
		"measure_jobs": 30
	}`
	post := func() specResponse {
		resp, err := http.Post(ts.URL+"/v1/specs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		var out specResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out
	}
	first := post()
	if first.FromCache || first.Hash == "" || first.Result.PolicyName != "farm" {
		t.Errorf("bad first response: %+v", first)
	}
	second := post()
	if !second.FromCache {
		t.Error("second identical spec was re-simulated")
	}
	a, _ := json.Marshal(first.Result)
	b, _ := json.Marshal(second.Result)
	if !bytes.Equal(a, b) {
		t.Errorf("cached spec result diverged:\n%s\n%s", b, a)
	}
}

func TestRejectsInvalidSpecs(t *testing.T) {
	ts := testServer(t)
	cases := []struct {
		path, body string
		status     int
	}{
		{"/v1/grids", `{not json`, http.StatusBadRequest},
		{"/v1/grids", `{"bogus": 1}`, http.StatusBadRequest},
		{"/v1/grids", `{"base": {"policy": {"name": "nope"}, "load_jobs_per_hour": 1}}`, http.StatusUnprocessableEntity},
		{"/v1/specs", `{"policy": {"name": "farm"}, "load_jobs_per_hour": -1}`, http.StatusUnprocessableEntity},
		{"/v1/specs", `{not json`, http.StatusBadRequest},
	}
	for i, tc := range cases {
		resp, err := http.Post(ts.URL+tc.path, "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		var out client.ErrorEnvelope
		json.NewDecoder(resp.Body).Decode(&out)
		resp.Body.Close()
		if resp.StatusCode != tc.status {
			t.Errorf("case %d: status %d, want %d", i, resp.StatusCode, tc.status)
		}
		if out.Error.Code == "" || out.Error.Message == "" {
			t.Errorf("case %d: incomplete error envelope: %+v", i, out)
		}
	}
}

func TestRejectsOversizedGrids(t *testing.T) {
	ts := testServerWith(t, serverConfig{Cache: resultcache.NewMemory(), MaxCells: 3})
	resp, err := http.Post(ts.URL+"/v1/grids", "application/json", strings.NewReader(gridBody))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("status %d, want 422 for an 8-cell grid with a 3-cell limit", resp.StatusCode)
	}
}

func TestRegistryEndpointsAndHealth(t *testing.T) {
	ts := testServer(t)
	for _, tc := range []struct{ path, key, want string }{
		{"/v1/policies", "policies", "outoforder"},
		{"/v1/workloads", "workloads", "daynight"},
	} {
		resp, err := http.Get(ts.URL + tc.path)
		if err != nil {
			t.Fatal(err)
		}
		var out map[string]json.RawMessage
		err = json.NewDecoder(resp.Body).Decode(&out)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		var names []string
		if err := json.Unmarshal(out[tc.key], &names); err != nil {
			t.Fatalf("%s: %q is not a string list: %v", tc.path, tc.key, err)
		}
		found := false
		for _, n := range names {
			if n == tc.want {
				found = true
			}
		}
		if !found {
			t.Errorf("%s missing %q: %v", tc.path, tc.want, names)
		}
		if string(out["page"]) != "1" {
			t.Errorf("%s missing pagination trailer: %v", tc.path, out)
		}
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz status %d", resp.StatusCode)
	}
}

// TestDiskBackedServiceSharesCacheAcrossRestarts: a second service
// instance over the same cache directory serves the first instance's
// results without re-simulating.
func TestDiskBackedServiceSharesCacheAcrossRestarts(t *testing.T) {
	dir := t.TempDir()
	open := func() *httptest.Server {
		cache, err := resultcache.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		return httptest.NewServer(mustServer(t, serverConfig{Cache: cache, MaxCells: 100}).routes())
	}
	ts1 := open()
	_, first := postGrid(t, ts1, gridBody)
	ts1.Close()

	ts2 := open()
	defer ts2.Close()
	_, second := postGrid(t, ts2, gridBody)
	if second.CacheHits != len(second.Cells) {
		t.Errorf("restarted service re-simulated %d of %d cells",
			len(second.Cells)-second.CacheHits, len(second.Cells))
	}
	a, _ := json.Marshal(first.Cells)
	b, _ := json.Marshal(second.Cells)
	if !bytes.Equal(a, b) {
		t.Errorf("results diverged across restart:\n%s\n%s", b, a)
	}
}

// TestSpecCacheHitMissBodiesIdentical pins the satellite fix: the body of
// a cache hit and a cache miss of the same spec are byte-identical apart
// from the from_cache marker — the miss path responds with the stored
// copy, so nothing the first caller sees can be absent for later ones.
func TestSpecCacheHitMissBodiesIdentical(t *testing.T) {
	ts := testServer(t)
	body := `{
		"params": {"nodes": 3, "cache_gb": 6, "mean_job_events": 1000, "dataspace_gb": 60},
		"policy": {"name": "outoforder"},
		"load_jobs_per_hour": 0.6,
		"seed": 9,
		"warmup_jobs": 10,
		"measure_jobs": 30
	}`
	post := func() []byte {
		resp, err := http.Post(ts.URL+"/v1/specs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	miss, hit := post(), post()
	if !bytes.Contains(miss, []byte(`"from_cache":false`)) {
		t.Fatalf("first POST not marked as a miss: %s", miss)
	}
	if !bytes.Contains(hit, []byte(`"from_cache":true`)) {
		t.Fatalf("second POST not marked as a hit: %s", hit)
	}
	normalised := bytes.Replace(miss, []byte(`"from_cache":false`), []byte(`"from_cache":true`), 1)
	if !bytes.Equal(normalised, hit) {
		t.Errorf("hit and miss bodies differ beyond from_cache:\nmiss: %s\nhit:  %s", miss, hit)
	}
}
