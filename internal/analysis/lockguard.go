package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"physched/internal/analysis/driver"
)

// LockGuard is a static race detector built on guard inference: it does
// not need annotations naming which mutex guards which field, it infers
// them from the code's own majority behaviour. For every struct with a
// mutex field, it observes each access to the struct's other fields in
// the struct's methods and classifies it — under a must-held lock, under
// no lock at all, or ambiguous (held on some paths only). A field whose
// accesses are predominantly locked (≥ 2 locked accesses under one
// mutex, strictly more than the unlocked count) is inferred guarded, and
// every unlocked access to it is reported. Package-level variables are
// handled the same way against package-level mutexes.
//
// Known false-negative space, by design (DESIGN.md §12): accesses
// through non-receiver paths (a *Pool reached via another struct's
// field), accesses inside function literals (they often run under a
// caller's lock the flow cannot see, so counting them would poison the
// tally with false "unlocked" sites), fields of structs that have no
// majority (2 locked vs 2 unlocked infers nothing), and aliasing through
// pointers. The analyzer trades recall for precision: what it does
// report is near-certainly a real race or a missing //physched:locked
// contract.
//
// //physched:locked on a method counts its accesses as guarded (the
// caller holds the lock); a deliberate unguarded access (e.g. a field
// that is immutable after construction) carries //physched:unguarded
// <reason> on its line.
var LockGuard = &driver.Analyzer{
	Name: "lockguard",
	Doc:  "infer field→mutex guards from majority usage; flag unguarded accesses to guarded fields",
	Run:  runLockGuard,
}

// guardStats accumulates the evidence for one field.
type guardStats struct {
	perLock  map[string]int // mutex field/var name → must-held access count
	unlocked []token.Pos    // access sites with no lock may-held
}

func runLockGuard(pass *driver.Pass) error {
	supp := newSuppressions(pass)

	structs := mutexStructs(pass)
	fieldStats := map[string]map[string]*guardStats{} // struct name → field → stats
	for name := range structs {
		fieldStats[name] = map[string]*guardStats{}
	}

	pkgMutexes, pkgVars := packageGuardCandidates(pass)
	varStats := map[string]*guardStats{} // package var name → stats

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			entry := lockState{}
			for _, key := range lockedFuncKeys(fd) {
				entry[key] = lockInfo{may: true, must: true, pos: fd.Pos()}
			}
			recvName, structName := receiverStruct(pass, fd, structs)
			hooks := &flowHooks{node: func(n ast.Node, st lockState) {
				if structName != "" {
					tallyFieldAccesses(pass, fd, recvName, structName, structs[structName], st, n, fieldStats[structName])
				}
				tallyPackageVarAccesses(pass, pkgMutexes, pkgVars, st, n, varStats)
			}}
			runLockFlow(pass, fd.Body, entry, hooks)
		}
	}

	report := func(pos token.Pos, format string, args ...any) {
		if supp.allows(pos, "unguarded") {
			return
		}
		pass.Reportf(pos, format, args...)
	}
	for _, structName := range sortedKeys(fieldStats) {
		for _, field := range sortedKeys(fieldStats[structName]) {
			reportGuarded(report, structName+".", field, fieldStats[structName][field])
		}
	}
	for _, name := range sortedKeys(varStats) {
		reportGuarded(report, "", name, varStats[name])
	}
	return nil
}

// reportGuarded applies the majority heuristic to one field's stats and
// reports every unlocked site if the field is inferred guarded.
func reportGuarded(report func(token.Pos, string, ...any), qual, field string, gs *guardStats) {
	if len(gs.unlocked) == 0 {
		return
	}
	best, bestCount := "", 0
	for _, lock := range sortedKeys(gs.perLock) {
		if c := gs.perLock[lock]; c > bestCount {
			best, bestCount = lock, c
		}
	}
	if bestCount < 2 || bestCount <= len(gs.unlocked) {
		return
	}
	for _, pos := range gs.unlocked {
		report(pos, "%s%s is guarded by %s%s on %d of %d accesses but not here; hold the lock or declare //physched:locked",
			qual, field, qual, best, bestCount, bestCount+len(gs.unlocked))
	}
}

// mutexStructs finds this package's structs that own at least one named
// mutex field: struct name → {mutex field names, data field names}.
type structGuardInfo struct {
	mutexFields map[string]bool
	dataFields  map[string]bool
}

func mutexStructs(pass *driver.Pass) map[string]structGuardInfo {
	out := map[string]structGuardInfo{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				info := structGuardInfo{mutexFields: map[string]bool{}, dataFields: map[string]bool{}}
				for _, field := range st.Fields.List {
					isMutex := isMutexType(pass.TypesInfo.Types[field.Type].Type)
					for _, name := range field.Names {
						if isMutex {
							info.mutexFields[name.Name] = true
						} else {
							info.dataFields[name.Name] = true
						}
					}
				}
				if len(info.mutexFields) > 0 && len(info.dataFields) > 0 {
					out[ts.Name.Name] = info
				}
			}
		}
	}
	return out
}

func isMutexType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// receiverStruct resolves fd's receiver when it is a named receiver on
// one of the candidate structs.
func receiverStruct(pass *driver.Pass, fd *ast.FuncDecl, structs map[string]structGuardInfo) (recvName, structName string) {
	if fd.Recv == nil || len(fd.Recv.List) != 1 || len(fd.Recv.List[0].Names) != 1 {
		return "", ""
	}
	name := fd.Recv.List[0].Names[0].Name
	if name == "_" {
		return "", ""
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	// Strip generic instantiation if any.
	if ix, ok := t.(*ast.IndexExpr); ok {
		t = ix.X
	}
	id, ok := t.(*ast.Ident)
	if !ok {
		return "", ""
	}
	if _, ok := structs[id.Name]; !ok {
		return "", ""
	}
	return name, id.Name
}

// tallyFieldAccesses records every recv.field access inside n with its
// lock status. Function literals are skipped (see package doc of this
// analyzer); mutex fields themselves are not data accesses.
func tallyFieldAccesses(pass *driver.Pass, fd *ast.FuncDecl, recvName, structName string, info structGuardInfo, st lockState, n ast.Node, stats map[string]*guardStats) {
	recvObj := pass.TypesInfo.Defs[fd.Recv.List[0].Names[0]]
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		sel, ok := m.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok || pass.TypesInfo.Uses[id] != recvObj {
			return true
		}
		field := sel.Sel.Name
		if !info.dataFields[field] {
			return true
		}
		status, lock := guardStatus(st, recvName+".", info.mutexFields)
		recordAccess(stats, field, sel.Pos(), status, lock)
		return true
	})
}

// tallyPackageVarAccesses does the same for package-level variables
// against package-level mutexes.
func tallyPackageVarAccesses(pass *driver.Pass, pkgMutexes map[string]bool, pkgVars map[types.Object]string, st lockState, n ast.Node, stats map[string]*guardStats) {
	if len(pkgMutexes) == 0 {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		id, ok := m.(*ast.Ident)
		if !ok {
			return true
		}
		name, ok := pkgVars[pass.TypesInfo.Uses[id]]
		if !ok {
			return true
		}
		status, lock := guardStatus(st, "", pkgMutexes)
		recordAccess(stats, name, id.Pos(), status, lock)
		return true
	})
}

type accessStatus uint8

const (
	accessLocked accessStatus = iota
	accessUnlocked
	accessAmbiguous
)

// guardStatus classifies the current state against a set of candidate
// mutexes (keyed prefix+name): must-held under one → locked under it; no
// candidate may-held → unlocked; otherwise ambiguous.
func guardStatus(st lockState, prefix string, mutexes map[string]bool) (accessStatus, string) {
	anyMay := false
	for _, m := range sortedKeys(mutexes) {
		info := st[prefix+m]
		if info.must {
			return accessLocked, m
		}
		if info.may {
			anyMay = true
		}
	}
	if anyMay {
		return accessAmbiguous, ""
	}
	return accessUnlocked, ""
}

func recordAccess(stats map[string]*guardStats, field string, pos token.Pos, status accessStatus, lock string) {
	gs := stats[field]
	if gs == nil {
		gs = &guardStats{perLock: map[string]int{}}
		stats[field] = gs
	}
	switch status {
	case accessLocked:
		gs.perLock[lock]++
	case accessUnlocked:
		gs.unlocked = append(gs.unlocked, pos)
	}
}

// packageGuardCandidates finds package-scope mutex variables and the
// package-scope data variables they might guard.
func packageGuardCandidates(pass *driver.Pass) (map[string]bool, map[types.Object]string) {
	mutexes := map[string]bool{}
	vars := map[types.Object]string{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					obj := pass.TypesInfo.Defs[name]
					if obj == nil {
						continue
					}
					if isMutexType(obj.Type()) {
						mutexes[name.Name] = true
					} else {
						vars[obj] = name.Name
					}
				}
			}
		}
	}
	if len(mutexes) == 0 {
		return nil, nil
	}
	return mutexes, vars
}

func sortedKeys[M map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
