package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"physched/internal/lab"
	"physched/internal/resultcache"
	"physched/internal/sched"
	"physched/internal/spec"
	"physched/internal/workload"
)

// server wires the spec layer, the lab worker pool and the result cache
// behind the HTTP API.
type server struct {
	cache    resultcache.Store
	workers  int
	maxCells int
}

func newServer(cache resultcache.Store, workers, maxCells int) *server {
	return &server{cache: cache, workers: workers, maxCells: maxCells}
}

func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /v1/policies", s.handlePolicies)
	mux.HandleFunc("GET /v1/workloads", s.handleWorkloads)
	mux.HandleFunc("POST /v1/specs", s.handleSpec)
	mux.HandleFunc("POST /v1/grids", s.handleGrid)
	mux.HandleFunc("GET /v1/results/{hash}", s.handleResult)
	mux.HandleFunc("GET /v1/aggregates/{hash}", s.handleAggregate)
	return mux
}

// writeJSON writes v as one JSON document.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

// writeError reports err as {"error": "..."}.
func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *server) handlePolicies(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string][]string{"policies": sched.Names()})
}

func (s *server) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string][]string{"workloads": workload.Names()})
}

// specResponse is the body of a single-spec run.
type specResponse struct {
	Hash      string     `json:"hash"`
	FromCache bool       `json:"from_cache"`
	Result    lab.Result `json:"result"`
}

// handleSpec runs one declarative spec, serving and feeding the
// content-addressed cache.
func (s *server) handleSpec(w http.ResponseWriter, r *http.Request) {
	sp, err := spec.Parse(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	hash, err := sp.Hash() // validates
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	if res, ok := s.cache.Get(hash); ok {
		writeJSON(w, http.StatusOK, specResponse{Hash: hash, FromCache: true, Result: res})
		return
	}
	sc, err := sp.Scenario()
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	res, err := lab.RunE(sc)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	res.Collector = nil
	stored := res
	stored.Scenario = lab.Scenario{}
	s.cache.Put(hash, stored)
	writeJSON(w, http.StatusOK, specResponse{Hash: hash, Result: res})
}

// progressLine is one NDJSON progress event of a grid run.
type progressLine struct {
	Type       string  `json:"type"` // "progress"
	Done       int     `json:"done"`
	Total      int     `json:"total"`
	Label      string  `json:"label,omitempty"`
	Load       float64 `json:"load_jobs_per_hour"`
	Seed       int64   `json:"seed"`
	Overloaded bool    `json:"overloaded"`
	FromCache  bool    `json:"from_cache"`
}

// cellResult is one cell of the final grid result line.
type cellResult struct {
	Hash   string     `json:"hash"`
	Label  string     `json:"label,omitempty"`
	Result lab.Result `json:"result"`
}

// aggregateResult is one (variant, load) replica aggregate of the final
// grid result line, present when the grid has a seed axis.
type aggregateResult struct {
	Hash      string        `json:"hash"`
	Label     string        `json:"label,omitempty"`
	Load      float64       `json:"load_jobs_per_hour"`
	Aggregate lab.Aggregate `json:"aggregate"`
}

// resultLine terminates a grid stream.
type resultLine struct {
	Type       string            `json:"type"` // "result"
	GridHash   string            `json:"grid_hash"`
	CacheHits  int               `json:"cache_hits"`
	Cells      []cellResult      `json:"cells"`
	Aggregates []aggregateResult `json:"aggregates,omitempty"`
}

// errorLine reports a failure after streaming began.
type errorLine struct {
	Type  string `json:"type"` // "error"
	Error string `json:"error"`
}

// handleGrid executes a declarative grid spec on the lab pool under the
// request's context, streaming NDJSON progress and finishing with a
// result line. Every cell is served from — and saved to — the
// content-addressed cache, so re-POSTing a grid re-simulates nothing.
func (s *server) handleGrid(w http.ResponseWriter, r *http.Request) {
	g, err := spec.ParseGrid(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	gridHash, err := g.Hash() // validates
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	lg, err := g.Compile()
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	cells := lg.Cells()
	if s.maxCells > 0 && len(cells) > s.maxCells {
		writeError(w, http.StatusUnprocessableEntity,
			fmt.Errorf("grid has %d cells, limit is %d", len(cells), s.maxCells))
		return
	}
	// Hash every cell spec once upfront; Options.Keys and the result line
	// both read this slice (hashing re-validates the spec, so doing it per
	// lookup would double the work on large grids). Execute re-enumerates
	// cells in the same coordinate order, so indexing by grid coordinates
	// is exact.
	keyOf := g.Keys()
	keys := make([]string, len(cells))
	for i, c := range cells {
		keys[i], _ = keyOf(c)
	}
	nLoads, nSeeds := len(lg.Loads), len(lg.Seeds)
	if nLoads == 0 {
		nLoads = 1
	}
	if nSeeds == 0 {
		nSeeds = 1
	}
	cellIndex := func(c lab.Cell) int {
		return (c.Variant*nLoads+c.LoadIdx)*nSeeds + c.SeedIdx
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	emit := func(v any) {
		enc.Encode(v)
		if flusher != nil {
			flusher.Flush()
		}
	}

	opts := lab.Options{
		Workers: s.workers,
		Context: r.Context(),
		Cache:   s.cache,
		Keys: func(c lab.Cell) (string, bool) {
			key := keys[cellIndex(c)]
			return key, key != ""
		},
		// Progress callbacks are serialised by the lab, so writing to the
		// response from here is safe. A client that stops reading blocks
		// the write and thereby this grid's own worker pool — deliberate
		// backpressure: every request runs on its own pool, so a slow
		// consumer throttles only its own simulation, and a disconnect
		// cancels it through the request context.
		Progress: func(u lab.ProgressUpdate) {
			emit(progressLine{
				Type: "progress", Done: u.Done, Total: u.Total,
				Label: u.Label, Load: u.Load, Seed: u.Seed,
				Overloaded: u.Overloaded, FromCache: u.FromCache,
			})
		},
	}
	rs, err := lg.Execute(opts)
	if err != nil {
		// The client cancelled (or the server is shutting down); the
		// line documents the abort for partial readers.
		emit(errorLine{Type: "error", Error: err.Error()})
		return
	}

	line := resultLine{Type: "result", GridHash: gridHash, CacheHits: rs.CacheHits}
	for i, res := range rs.Results {
		line.Cells = append(line.Cells, cellResult{Hash: keys[i], Label: rs.Cells[i].Label, Result: res})
	}
	if len(rs.Seeds) > 1 {
		for vi, label := range rs.Labels {
			for li, load := range rs.Loads {
				agg := rs.Aggregate(vi, li)
				hash, err := g.AggregateKey(vi, li)
				if err != nil {
					continue
				}
				s.cache.PutAggregate(hash, agg)
				line.Aggregates = append(line.Aggregates, aggregateResult{
					Hash: hash, Label: label, Load: load, Aggregate: agg,
				})
			}
		}
	}
	emit(line)
}

// handleResult serves a cached run result by its spec hash.
func (s *server) handleResult(w http.ResponseWriter, r *http.Request) {
	hash := r.PathValue("hash")
	res, ok := s.cache.Get(hash)
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("no cached result for this hash"))
		return
	}
	writeJSON(w, http.StatusOK, specResponse{Hash: hash, FromCache: true, Result: res})
}

// handleAggregate serves a cached replica aggregate by its hash.
func (s *server) handleAggregate(w http.ResponseWriter, r *http.Request) {
	hash := r.PathValue("hash")
	agg, ok := s.cache.GetAggregate(hash)
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("no cached aggregate for this hash"))
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Hash      string        `json:"hash"`
		Aggregate lab.Aggregate `json:"aggregate"`
	}{hash, agg})
}
