package spec

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"strings"
	"testing"

	"physched/internal/lab"
	"physched/internal/model"
	"physched/internal/sched"
)

// smallSpec is a fast, valid spec for compile-and-run tests.
func smallSpec() Spec {
	return Spec{
		Params: Params{
			Nodes:         4,
			CacheGB:       10,
			MeanJobEvents: 2_000,
			DataspaceGB:   200,
		},
		Policy:      Policy{Name: "outoforder"},
		Load:        1.2,
		Seed:        7,
		WarmupJobs:  30,
		MeasureJobs: 120,
	}
}

func TestSpecRoundTripsThroughJSON(t *testing.T) {
	s := smallSpec()
	s.Workload = Workload{Name: "daynight", Swing: 0.5}
	s.DelayIncluded = true
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	if back != s {
		t.Errorf("round trip changed the spec:\n%+v\nwant\n%+v", back, s)
	}
}

// TestCanonicalEncodeDecodeEncodeIdentity is the canonicalisation
// contract: decoding a canonical encoding and re-encoding it is
// byte-identical, across a table of representative specs.
func TestCanonicalEncodeDecodeEncodeIdentity(t *testing.T) {
	table := []Spec{
		smallSpec(),
		{Policy: Policy{Name: "farm"}, Load: 0.9},
		{Policy: Policy{Name: "delayed", DelayHours: 11.5, StripeEvents: 200}, Load: 2.75,
			Params: Params{Preset: "stated", HotWeight: -1}},
		{Policy: Policy{Name: "adaptive", StripeEvents: 100}, Load: 3.0001,
			Workload: Workload{Name: "daynight", Swing: 0.25, PeakJobsPerHour: 4.5},
			Seed:     -3, OverloadBacklog: 512, MaxSimTimeDays: 400.5, DelayIncluded: true},
		{SchemaVersion: 1, Policy: Policy{Name: "replication", MaxWaitHours: 24}, Load: 1.0 / 3.0,
			Params: Params{PipelinedTransfers: true}},
	}
	for i, s := range table {
		c, err := s.Canonical()
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		back, err := Parse(bytes.NewReader(c))
		if err != nil {
			t.Fatalf("case %d: decoding canonical form: %v", i, err)
		}
		c2, err := back.Canonical()
		if err != nil {
			t.Fatalf("case %d: re-canonicalising: %v", i, err)
		}
		if !bytes.Equal(c, c2) {
			t.Errorf("case %d: canonical form unstable:\n%s\n%s", i, c, c2)
		}
	}
}

// TestCanonicalNormalisesDefaults: equivalent spellings of the defaults
// share one canonical form and therefore one hash.
func TestCanonicalNormalisesDefaults(t *testing.T) {
	a := smallSpec() // empty preset, empty workload, version 0
	b := smallSpec()
	b.SchemaVersion = Version
	b.Params.Preset = "calibrated"
	b.Workload.Name = "poisson"
	ha, err := a.Hash()
	if err != nil {
		t.Fatal(err)
	}
	hb, err := b.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if ha != hb {
		t.Errorf("equivalent specs hash differently: %s vs %s", ha, hb)
	}
	if len(ha) != 64 {
		t.Errorf("hash %q is not hex SHA-256", ha)
	}
}

func TestHashSensitivity(t *testing.T) {
	base := smallSpec()
	h0, err := base.Hash()
	if err != nil {
		t.Fatal(err)
	}
	mutations := map[string]func(*Spec){
		"load":     func(s *Spec) { s.Load = 1.3 },
		"seed":     func(s *Spec) { s.Seed = 8 },
		"policy":   func(s *Spec) { s.Policy.Name = "farm" },
		"args":     func(s *Spec) { s.Policy.MaxWaitHours = 24 },
		"nodes":    func(s *Spec) { s.Params.Nodes = 5 },
		"workload": func(s *Spec) { s.Workload = Workload{Name: "daynight", Swing: 0.1} },
		"window":   func(s *Spec) { s.MeasureJobs = 121 },
	}
	for name, mutate := range mutations {
		s := base
		mutate(&s)
		h, err := s.Hash()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if h == h0 {
			t.Errorf("mutating %s did not change the hash", name)
		}
	}
}

func TestValidateRejectsBadSpecs(t *testing.T) {
	cases := map[string]Spec{
		"missing policy":    {Load: 1},
		"unknown policy":    {Policy: Policy{Name: "nope"}, Load: 1},
		"unknown workload":  {Policy: Policy{Name: "farm"}, Workload: Workload{Name: "nope"}, Load: 1},
		"bad workload args": {Policy: Policy{Name: "farm"}, Workload: Workload{Name: "daynight", Swing: 2}, Load: 1},
		"zero load":         {Policy: Policy{Name: "farm"}},
		"negative load":     {Policy: Policy{Name: "farm"}, Load: -1},
		"bad preset":        {Policy: Policy{Name: "farm"}, Load: 1, Params: Params{Preset: "bogus"}},
		"bad version":       {SchemaVersion: 99, Policy: Policy{Name: "farm"}, Load: 1},
		"negative window":   {Policy: Policy{Name: "farm"}, Load: 1, WarmupJobs: -1},
		"negative backlog":  {Policy: Policy{Name: "farm"}, Load: 1, OverloadBacklog: -1},
		"bad policy args":   {Policy: Policy{Name: "delayed", DelayHours: -2}, Load: 1},
		"dead policy args":  {Policy: Policy{Name: "farm", DelayHours: 48}, Load: 1},
		"dead workload arg": {Policy: Policy{Name: "farm"}, Workload: Workload{Name: "poisson", Swing: 0.5}, Load: 1},
		"negative nodes":    {Policy: Policy{Name: "farm"}, Load: 1, Params: Params{Nodes: -5}},
		"negative cache":    {Policy: Policy{Name: "farm"}, Load: 1, Params: Params{CacheGB: -1}},
	}
	for name, s := range cases {
		if err := s.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
		if _, err := s.Scenario(); err == nil {
			t.Errorf("%s: compiled", name)
		}
		if _, err := s.Canonical(); err == nil {
			t.Errorf("%s: canonicalised", name)
		}
	}
}

func TestParseRejectsUnknownFields(t *testing.T) {
	if _, err := Parse(strings.NewReader(`{"bogus": 1}`)); err == nil {
		t.Error("unknown spec field accepted")
	}
	if _, err := ParseGrid(strings.NewReader(`{"bogus": 1}`)); err == nil {
		t.Error("unknown grid field accepted")
	}
}

// TestScenarioMatchesClosureScenario: a compiled poisson spec must run
// bit-identically to the equivalent closure-built lab.Scenario, so the
// declarative API is a drop-in replacement.
func TestScenarioMatchesClosureScenario(t *testing.T) {
	compiled, err := smallSpec().Scenario()
	if err != nil {
		t.Fatal(err)
	}
	p := model.PaperCalibrated()
	p.Nodes = 4
	p.CacheBytes = 10 * model.GB
	p.MeanJobEvents = 2_000
	p.DataspaceBytes = 200 * model.GB
	closure := lab.Scenario{
		Params:      p,
		NewPolicy:   func() sched.Policy { return sched.NewOutOfOrder() },
		Load:        1.2,
		Seed:        7,
		WarmupJobs:  30,
		MeasureJobs: 120,
	}
	a, err := lab.RunE(compiled)
	if err != nil {
		t.Fatal(err)
	}
	b, err := lab.RunE(closure)
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if !bytes.Equal(ja, jb) {
		t.Errorf("spec-compiled run diverged from closure run:\n%s\n%s", ja, jb)
	}
}

func TestScenarioAppliesEveryField(t *testing.T) {
	s := smallSpec()
	s.Policy = Policy{Name: "delayed", DelayHours: 11, StripeEvents: 200}
	s.Workload = Workload{Name: "daynight", Swing: 0.3}
	s.OverloadBacklog = 777
	s.MaxSimTimeDays = 10
	s.DelayIncluded = true
	sc, err := s.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	if sc.Params.Nodes != 4 || sc.Params.CacheBytes != 10*model.GB {
		t.Errorf("params not applied: %+v", sc.Params)
	}
	if sc.OverloadBacklog != 777 || sc.MaxSimTime != 10*model.Day || !sc.DelayIncluded {
		t.Errorf("scenario fields not applied: %+v", sc)
	}
	pol := sc.NewPolicy()
	if pol.Name() != "delayed" {
		t.Errorf("policy = %q", pol.Name())
	}
	if d := pol.(*sched.Delayed); d.Period != 11*model.Hour || d.Stripe != 200 {
		t.Errorf("policy args not applied: %+v", d)
	}
	src := sc.NewWorkload(3, 1.2)
	if src == nil || src.Next() == nil {
		t.Error("workload closure broken")
	}
}

// FuzzCanonicalRoundTrip drives the canonicalisation identity over
// machine-picked field values: for every valid spec the fuzzer reaches,
// encode→decode→encode of the canonical form must be byte-identical and
// the hash stable.
func FuzzCanonicalRoundTrip(f *testing.F) {
	f.Add(int64(1), 1.5, "outoforder", 0.0, int64(0), 0.0, "", 0.0, 10, 50, false)
	f.Add(int64(-9), 0.25, "delayed", 11.0, int64(200), 0.0, "daynight", 0.5, 0, 0, true)
	f.Add(int64(0), 3.46, "adaptive", 0.0, int64(100), 48.0, "poisson", 0.0, 1, 1, false)
	f.Fuzz(func(t *testing.T, seed int64, load float64, policy string,
		delayHours float64, stripe int64, maxWait float64,
		wl string, swing float64, warmup, measure int, delayIncl bool) {
		s := Spec{
			Policy:        Policy{Name: policy, DelayHours: delayHours, StripeEvents: stripe, MaxWaitHours: maxWait},
			Workload:      Workload{Name: wl, Swing: swing},
			Load:          load,
			Seed:          seed,
			WarmupJobs:    warmup,
			MeasureJobs:   measure,
			DelayIncluded: delayIncl,
		}
		c, err := s.Canonical()
		if err != nil {
			t.Skip() // invalid spec: rejection, not canonicalisation, is under test elsewhere
		}
		back, err := Parse(bytes.NewReader(c))
		if err != nil {
			t.Fatalf("canonical form does not parse: %v\n%s", err, c)
		}
		c2, err := back.Canonical()
		if err != nil {
			t.Fatalf("canonical form does not re-canonicalise: %v\n%s", err, c)
		}
		if !bytes.Equal(c, c2) {
			t.Fatalf("canonical form unstable:\n%s\n%s", c, c2)
		}
		h1, err1 := s.Hash()
		h2, err2 := back.Hash()
		if err1 != nil || err2 != nil || h1 != h2 {
			t.Fatalf("hash unstable: %q (%v) vs %q (%v)", h1, err1, h2, err2)
		}
	})
}

// FuzzGridCellKeyStable: a grid's per-cell keys must be identical before
// and after a JSON round trip of the grid — the property content-addressed
// caching across processes (physchedd) rests on.
func FuzzGridCellKeyStable(f *testing.F) {
	f.Add(int64(1), 3, 2, 2)
	f.Add(int64(42), 1, 1, 1)
	f.Fuzz(func(t *testing.T, seed int64, variants, loads, seeds int) {
		if variants < 0 || variants > 4 || loads < 1 || loads > 4 || seeds < 1 || seeds > 4 {
			t.Skip()
		}
		rng := rand.New(rand.NewSource(seed))
		names := sched.Names()
		g := Grid{Base: smallSpec()}
		for i := 0; i < variants; i++ {
			pol := Policy{Name: names[rng.Intn(len(names))]}
			g.Variants = append(g.Variants, Variant{Label: string(rune('a' + i)), Policy: &pol})
		}
		for i := 0; i < loads; i++ {
			g.Loads = append(g.Loads, 0.5+rng.Float64())
		}
		for i := 0; i < seeds; i++ {
			g.Seeds = append(g.Seeds, rng.Int63n(1000))
		}
		c, err := g.Canonical()
		if err != nil {
			t.Skip()
		}
		back, err := ParseGrid(bytes.NewReader(c))
		if err != nil {
			t.Fatalf("canonical grid does not parse: %v", err)
		}
		lg, err := g.Compile()
		if err != nil {
			t.Fatal(err)
		}
		keysA, keysB := g.Keys(), back.Keys()
		for _, cell := range lg.Cells() {
			ka, oka := keysA(cell)
			kb, okb := keysB(cell)
			if !oka || !okb || ka != kb {
				t.Fatalf("cell key unstable across round trip: %q/%v vs %q/%v", ka, oka, kb, okb)
			}
		}
	})
}
