package physched

import "testing"

// reducedParams shrinks the cluster so the facade tests run in
// milliseconds while exercising the full public API surface.
func reducedParams() Params {
	p := PaperCalibrated()
	p.Nodes = 3
	p.MeanJobEvents = 1_000
	p.DataspaceBytes = 60 * GB
	p.CacheBytes = 6 * GB
	return p
}

func TestPublicRun(t *testing.T) {
	p := reducedParams()
	res := Run(Scenario{
		Params:      p,
		NewPolicy:   OutOfOrder,
		Load:        0.4 * p.FarmMaxLoad(),
		Seed:        1,
		WarmupJobs:  20,
		MeasureJobs: 100,
	})
	if res.Overloaded {
		t.Fatal("overloaded at low load")
	}
	if res.MeasuredJobs != 100 || res.AvgSpeedup <= 1 {
		t.Errorf("unexpected result: %+v", res)
	}
}

func TestPublicPolicyConstructors(t *testing.T) {
	policies := map[string]func() Policy{
		"farm":                   Farm,
		"splitting":              Splitting,
		"cacheoriented":          CacheOriented,
		"outoforder":             OutOfOrder,
		"outoforder+replication": Replication,
		"delayed":                func() Policy { return Delayed(Hour, 500) },
		"adaptive":               func() Policy { return Adaptive(500) },
	}
	for want, mk := range policies {
		if got := mk().Name(); got != want {
			t.Errorf("policy name = %q, want %q", got, want)
		}
	}
}

func TestPublicSweepAndSustainableLoad(t *testing.T) {
	p := reducedParams()
	s := Scenario{
		Params:      p,
		NewPolicy:   Farm,
		Seed:        5,
		WarmupJobs:  20,
		MeasureJobs: 120,
	}
	loads := []float64{0.5 * p.FarmMaxLoad(), 2 * p.FarmMaxLoad()}
	results := Sweep(s, loads)
	if results[0].Overloaded {
		t.Error("farm overloaded at half its max load")
	}
	if !results[1].Overloaded {
		t.Error("farm sustained double its max load")
	}
	if got := SustainableLoad(s, loads); got != loads[0] {
		t.Errorf("SustainableLoad = %v, want %v", got, loads[0])
	}
}

func TestPaperPresets(t *testing.T) {
	cal := PaperCalibrated()
	if cal.Nodes != 10 || cal.MeanJobEvents != 30_000 {
		t.Errorf("calibrated preset wrong: %+v", cal)
	}
	stated := PaperStated()
	if stated.TapeBytesPerSec != 1_000_000 {
		t.Errorf("stated preset wrong tape throughput: %v", stated.TapeBytesPerSec)
	}
	// Calibration must hit the paper's derived quantities.
	if got := cal.MaxTheoreticalLoad(); got < 3.45 || got > 3.47 {
		t.Errorf("MaxTheoreticalLoad = %v, want 3.46", got)
	}
}
