package asciiplot

import (
	"strings"
	"testing"
)

func TestRenderBasic(t *testing.T) {
	out := Render([]Series{
		{Label: "linear", X: []float64{0, 1, 2, 3}, Y: []float64{0, 1, 2, 3}},
	}, Options{Title: "test", XLabel: "x", YLabel: "y"})
	if !strings.Contains(out, "test") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "linear") {
		t.Error("legend missing")
	}
	if !strings.Contains(out, "*") {
		t.Error("no data points plotted")
	}
	if !strings.Contains(out, "x: x") {
		t.Error("axis labels missing")
	}
}

func TestRenderMultipleSeriesDistinctMarkers(t *testing.T) {
	out := Render([]Series{
		{Label: "a", X: []float64{0, 1}, Y: []float64{1, 2}},
		{Label: "b", X: []float64{0, 1}, Y: []float64{3, 4}},
	}, Options{})
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Error("series should use distinct markers")
	}
}

func TestRenderLogY(t *testing.T) {
	out := Render([]Series{
		{Label: "wide", X: []float64{0, 1, 2}, Y: []float64{1, 1000, 1_000_000}},
	}, Options{LogY: true, Height: 12, Width: 40})
	if out == "" || !strings.Contains(out, "*") {
		t.Error("log plot empty")
	}
	// Non-positive values must be skipped, not crash.
	out = Render([]Series{
		{Label: "zeros", X: []float64{0, 1}, Y: []float64{0, 10}},
	}, Options{LogY: true})
	if !strings.Contains(out, "*") {
		t.Error("positive point not plotted")
	}
}

func TestRenderEmpty(t *testing.T) {
	out := Render(nil, Options{Title: "empty"})
	if !strings.Contains(out, "no data") {
		t.Errorf("want no-data message, got %q", out)
	}
	out = Render([]Series{{Label: "allzero", Y: []float64{0}, X: []float64{0}}}, Options{LogY: true})
	if !strings.Contains(out, "no data") {
		t.Errorf("all-nonpositive log plot should say no data, got %q", out)
	}
}

func TestRenderConstantSeries(t *testing.T) {
	// Degenerate ranges must not divide by zero.
	out := Render([]Series{
		{Label: "flat", X: []float64{1, 1, 1}, Y: []float64{5, 5, 5}},
	}, Options{})
	if !strings.Contains(out, "*") {
		t.Error("flat series not plotted")
	}
}

func TestMarkersRespectBounds(t *testing.T) {
	out := Render([]Series{
		{Label: "s", X: []float64{0, 100}, Y: []float64{-5, 1e9}},
	}, Options{Width: 30, Height: 8})
	for _, line := range strings.Split(out, "\n") {
		if len([]rune(line)) > 30+14+40 {
			t.Errorf("line too long: %q", line)
		}
	}
}
