package cache

import (
	"testing"

	"physched/internal/dataspace"
)

func newTestIndex() *Index {
	ix := NewIndex(3, 10_000, EvictLRU)
	ix.Node(0).Insert(dataspace.Iv(0, 100), 1)
	ix.Node(1).Insert(dataspace.Iv(100, 250), 1)
	ix.Node(2).Insert(dataspace.Iv(400, 500), 1)
	return ix
}

func TestCachedAnywhere(t *testing.T) {
	ix := newTestIndex()
	s := ix.CachedAnywhere(dataspace.Iv(0, 600))
	if s.Len() != 350 {
		t.Errorf("CachedAnywhere len = %d, want 350", s.Len())
	}
	if !s.ContainsInterval(dataspace.Iv(0, 250)) {
		t.Error("missing merged run [0,250)")
	}
}

func TestPartitionByNode(t *testing.T) {
	ix := newTestIndex()
	pieces := ix.PartitionByNode(dataspace.Iv(50, 450))
	want := []NodePiece{
		{dataspace.Iv(50, 100), 0},
		{dataspace.Iv(100, 250), 1},
		{dataspace.Iv(250, 400), -1},
		{dataspace.Iv(400, 450), 2},
	}
	if len(pieces) != len(want) {
		t.Fatalf("pieces = %v, want %v", pieces, want)
	}
	for i := range want {
		if pieces[i] != want[i] {
			t.Errorf("piece %d = %v, want %v", i, pieces[i], want[i])
		}
	}
}

func TestPartitionByNodeCoversExactly(t *testing.T) {
	ix := newTestIndex()
	// Also create an overlap: node 0 caches part of node 1's range.
	ix.Node(0).Insert(dataspace.Iv(80, 150), 2)
	iv := dataspace.Iv(0, 600)
	pieces := ix.PartitionByNode(iv)
	pos := iv.Start
	for _, p := range pieces {
		if p.Interval.Start != pos || p.Interval.Empty() {
			t.Fatalf("pieces not contiguous at %d: %v", pos, pieces)
		}
		if p.Node >= 0 && !ix.Node(p.Node).Contains(p.Interval) {
			t.Errorf("piece %v not fully cached on node %d", p.Interval, p.Node)
		}
		if p.Node == -1 && !ix.CachedAnywhere(p.Interval).Empty() {
			t.Errorf("piece %v marked uncached but is cached somewhere", p.Interval)
		}
		pos = p.Interval.End
	}
	if pos != iv.End {
		t.Errorf("pieces end at %d, want %d", pos, iv.End)
	}
}

func TestPartitionPrefersLongestRun(t *testing.T) {
	ix := NewIndex(2, 10_000, EvictLRU)
	ix.Node(0).Insert(dataspace.Iv(0, 50), 1)
	ix.Node(1).Insert(dataspace.Iv(0, 200), 1)
	pieces := ix.PartitionByNode(dataspace.Iv(0, 200))
	if len(pieces) != 1 || pieces[0].Node != 1 {
		t.Errorf("expected single piece on node 1, got %v", pieces)
	}
}

func TestBestNodeFor(t *testing.T) {
	ix := newTestIndex()
	n, amt := ix.BestNodeFor(dataspace.Iv(0, 300))
	if n != 1 || amt != 150 {
		t.Errorf("BestNodeFor = (%d, %d), want (1, 150)", n, amt)
	}
	n, amt = ix.BestNodeFor(dataspace.Iv(300, 400))
	if n != -1 || amt != 0 {
		t.Errorf("BestNodeFor uncached = (%d, %d), want (-1, 0)", n, amt)
	}
}

func TestCachedOn(t *testing.T) {
	ix := newTestIndex()
	if got := ix.CachedOn(1, dataspace.Iv(0, 300)); got != 150 {
		t.Errorf("CachedOn(1) = %d, want 150", got)
	}
}
