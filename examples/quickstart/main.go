// Quickstart: simulate the paper's 10-node cluster under the out-of-order
// scheduling policy at a moderate load and print the headline metrics.
package main

import (
	"fmt"

	"physched"
)

func main() {
	params := physched.PaperCalibrated()

	res := physched.Run(physched.Scenario{
		Params:      params,
		NewPolicy:   physched.OutOfOrder,
		Load:        1.5, // jobs per hour
		Seed:        1,
		WarmupJobs:  100,
		MeasureJobs: 400,
	})

	fmt.Printf("cluster: %d nodes, %d GB cache/node, theoretical max load %.2f jobs/h\n",
		params.Nodes, params.CacheBytes/physched.GB, params.MaxTheoreticalLoad())
	if res.Overloaded {
		fmt.Println("the cluster is overloaded at this arrival rate")
		return
	}
	fmt.Printf("policy %q at %.2f jobs/hour:\n", res.PolicyName, res.Load)
	fmt.Printf("  average speedup     %.1f (vs single node without cache)\n", res.AvgSpeedup)
	fmt.Printf("  average waiting     %.1f minutes\n", res.AvgWaiting/physched.Minute)
	fmt.Printf("  average processing  %.1f hours (reference job: %.1f hours)\n",
		res.AvgProc/physched.Hour, params.SingleNodeNoCacheTime()/physched.Hour)
	st := res.Cluster
	total := st.EventsFromCache + st.EventsFromRemote + st.EventsFromTape
	fmt.Printf("  events from cache   %.0f%%\n", 100*float64(st.EventsFromCache)/float64(total))
}
