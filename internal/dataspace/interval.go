// Package dataspace models the experiment dataspace as a line of event
// indices and provides interval arithmetic over it. Jobs read contiguous
// event ranges, node disk caches hold unions of ranges, and every scheduling
// policy in the paper splits jobs along boundaries of such unions, so the
// Interval and Set types underpin the whole simulator.
package dataspace

import "fmt"

// Interval is a half-open range [Start, End) of event indices.
// An interval with End <= Start is empty.
type Interval struct {
	Start, End int64
}

// Iv is shorthand for Interval{start, end}.
func Iv(start, end int64) Interval { return Interval{Start: start, End: end} }

// Len returns the number of events in i (zero for empty intervals).
func (i Interval) Len() int64 {
	if i.End <= i.Start {
		return 0
	}
	return i.End - i.Start
}

// Empty reports whether i contains no events.
func (i Interval) Empty() bool { return i.End <= i.Start }

// Contains reports whether event index e lies in i.
func (i Interval) Contains(e int64) bool { return i.Start <= e && e < i.End }

// ContainsInterval reports whether o is fully inside i.
func (i Interval) ContainsInterval(o Interval) bool {
	return o.Empty() || (i.Start <= o.Start && o.End <= i.End)
}

// Overlaps reports whether i and o share at least one event.
func (i Interval) Overlaps(o Interval) bool {
	return !i.Empty() && !o.Empty() && i.Start < o.End && o.Start < i.End
}

// Intersect returns the intersection of i and o (possibly empty).
func (i Interval) Intersect(o Interval) Interval {
	r := Iv(max64(i.Start, o.Start), min64(i.End, o.End))
	if r.Empty() {
		return Interval{}
	}
	return r
}

// SplitAt cuts i at event index e, returning the part before and after.
// If e is outside i, one of the parts is empty.
func (i Interval) SplitAt(e int64) (left, right Interval) {
	if e <= i.Start {
		return Interval{}, i
	}
	if e >= i.End {
		return i, Interval{}
	}
	return Iv(i.Start, e), Iv(e, i.End)
}

// Halves splits i into two contiguous parts of (near-)equal length.
func (i Interval) Halves() (Interval, Interval) {
	return i.SplitAt(i.Start + i.Len()/2)
}

func (i Interval) String() string { return fmt.Sprintf("[%d,%d)", i.Start, i.End) }

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
