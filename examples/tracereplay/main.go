// Tracereplay records a synthetic workload once and replays the identical
// job stream against several policies, producing a per-job, like-for-like
// comparison impossible with independent random runs. It also writes the
// trace to a temporary file to show the JSONL round trip used to feed the
// simulator from real accounting logs.
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"

	"physched"
)

func main() {
	log.SetFlags(0)
	params := physched.PaperCalibrated()
	params.Nodes = 5
	params.MeanJobEvents = 5_000
	params.DataspaceBytes = 400 * physched.GB
	params.CacheBytes = 20 * physched.GB

	// Record 400 jobs at a fixed arrival rate.
	load := 0.8 * params.FarmMaxLoad()
	gen := physched.NewWorkloadGenerator(params, 7, load)
	var buf bytes.Buffer
	if err := physched.ExportWorkload(&buf, gen, 400); err != nil {
		log.Fatal(err)
	}

	// Demonstrate the file round trip.
	tmp, err := os.CreateTemp("", "physched-trace-*.jsonl")
	if err != nil {
		log.Fatal(err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		log.Fatal(err)
	}
	if err := tmp.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recorded 400 jobs at %.2f jobs/hour into %s\n\n", load, tmp.Name())

	policies := []struct {
		name string
		mk   func() physched.Policy
	}{
		{"farm", physched.Farm},
		{"cache-oriented", physched.CacheOriented},
		{"out-of-order", physched.OutOfOrder},
	}

	fmt.Printf("%-16s %-10s %-12s %-12s\n", "policy", "speedup", "avg wait", "p99 wait")
	for _, pol := range policies {
		f, err := os.Open(tmp.Name())
		if err != nil {
			log.Fatal(err)
		}
		rep, err := physched.NewWorkloadReplay(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		res := physched.Run(physched.Scenario{
			Params:      params,
			NewPolicy:   pol.mk,
			Workload:    rep, // the identical job stream for every policy
			Seed:        1,
			WarmupJobs:  50,
			MeasureJobs: 300,
		})
		if res.Overloaded {
			fmt.Printf("%-16s overloaded\n", pol.name)
			continue
		}
		fmt.Printf("%-16s %-10.2f %-12s %-12s\n", pol.name,
			res.AvgSpeedup,
			fmt.Sprintf("%.1fmn", res.AvgWaiting/physched.Minute),
			fmt.Sprintf("%.1fmn", res.P99Waiting/physched.Minute))
	}
	fmt.Println("\nsame arrivals, same event ranges — the spread is pure scheduling policy")
}
