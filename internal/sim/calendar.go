package sim

import (
	"math/bits"
	"sort"
)

// calendar is a calendar (bucket) priority queue over simulated time. Each
// pending event hashes to buckets[floor(time/width) mod len(buckets)]; the
// virtual bucket number floor(time/width) is cached on the event, so one
// physical bucket can hold events of many calendar "years" and a far-future
// event (an MTBF fault timer, a week-long aging limit) just sits in its
// bucket until the clock gets near — there is no redistribution per year.
//
// For the near-monotone schedule pattern of a simulation both insert and
// extract are O(1) amortised: insert appends to the hashed bucket, and
// extraction walks virtual buckets from floor(now/width), skipping empty
// physical buckets a bitmap word at a time, almost always hitting the
// minimum in the first occupied bucket. When a whole cycle holds nothing —
// only far-future events remain — a direct scan over the occupied buckets
// finds the global minimum, playing the role a sorted overflow bucket
// would. The structure resizes on occupancy and recalibrates its bucket
// width from a sampled median inter-event gap, so it adapts to whatever
// time scale the simulation is currently operating on; every decision is a
// deterministic function of the operation sequence, preserving the
// engine's reproducibility contract.
type calendar struct {
	buckets [][]*Event
	occ     []uint64 // occupancy bitmap over buckets
	mask    int
	width   float64 // seconds of simulated time per virtual bucket
	count   int     // events currently stored in buckets
	recal   bool    // width drifted: recalibrate at the next extraction
	scratch []float64
}

const (
	calMinBuckets = 64
	// calMaxScan bounds how many same-virtual-bucket events one extraction
	// may scan before the width is declared too coarse and recalibrated.
	calMaxScan = 16
)

func (c *calendar) init() {
	c.buckets = make([][]*Event, calMinBuckets)
	c.occ = make([]uint64, calMinBuckets/64)
	c.mask = calMinBuckets - 1
	c.width = 1.0
}

// insert files ev into its bucket. The event's time and seq must already
// be set.
//
//physched:hotpath
func (c *calendar) insert(ev *Event) {
	if c.count >= 2*len(c.buckets) {
		c.resize(2 * len(c.buckets))
	}
	vb := int64(ev.time / c.width)
	ev.vb = vb
	p := int(vb) & c.mask
	c.buckets[p] = append(c.buckets[p], ev)
	c.occ[p>>6] |= 1 << (p & 63)
	c.count++
}

// extractMinBatch removes the cohort of events sharing the minimal pending
// time and appends it to dst in seq order (FIFO among simultaneous
// events). now is the engine clock, a lower bound for every pending time.
// It returns dst unchanged when the calendar is empty.
//
//physched:hotpath
func (c *calendar) extractMinBatch(now float64, dst []*Event) []*Event {
	if c.count == 0 {
		return dst
	}
	if c.recal {
		c.recal = false
		c.resize(len(c.buckets))
	} else if c.count < len(c.buckets)/8 && len(c.buckets) > calMinBuckets {
		c.resize(len(c.buckets) / 2)
	}
	bi, minT := c.findMin(now)
	bkt := c.buckets[bi]
	j := 0
	for _, ev := range bkt {
		if ev.time == minT {
			ev.state = stateBatch
			dst = append(dst, ev)
			c.count--
		} else {
			bkt[j] = ev
			j++
		}
	}
	for k := j; k < len(bkt); k++ {
		bkt[k] = nil
	}
	c.buckets[bi] = bkt[:j]
	if j == 0 {
		c.occ[bi>>6] &^= 1 << (bi & 63)
	}
	// Insertion sort by seq: cohorts are almost always a single event, and
	// even bursts of simultaneous completions stay small.
	for i := 1; i < len(dst); i++ {
		for k := i; k > 0 && dst[k].seq < dst[k-1].seq; k-- {
			dst[k], dst[k-1] = dst[k-1], dst[k]
		}
	}
	return dst
}

// findMin locates the bucket holding the minimal-time event and that time.
// It must only be called with count > 0.
func (c *calendar) findMin(now float64) (int, float64) {
	nb := len(c.buckets)
	vb0 := int64(now / c.width)
	p0 := int(vb0) & c.mask
	// Walk one full cycle of virtual buckets starting at the clock's. Every
	// pending event has time ≥ now, hence vb ≥ vb0, so the first virtual
	// bucket holding an event holds the minimum.
	for k := 0; k < nb; {
		p := (p0 + k) & c.mask
		w := c.occ[p>>6] >> uint(p&63)
		if w == 0 {
			k += 64 - p&63 // whole occupancy word empty: skip past it
			continue
		}
		if w&1 == 0 {
			k += bits.TrailingZeros64(w) // skip to the next occupied bucket
			continue
		}
		vb := vb0 + int64(k)
		best := -1
		scanned := 0
		mixed := false
		bkt := c.buckets[p]
		for i, ev := range bkt {
			if ev.vb != vb {
				continue
			}
			scanned++
			if best < 0 {
				best = i
			} else if ev.time != bkt[best].time {
				mixed = true
				if ev.time < bkt[best].time {
					best = i
				}
			}
		}
		if best >= 0 {
			// Recalibrate only when a narrower width could actually spread
			// the crowd: a large cohort of *simultaneous* events is
			// irreducible and extracts as one batch anyway.
			if scanned > calMaxScan && mixed {
				c.recal = true
			}
			return p, bkt[best].time
		}
		k++
	}
	// Only far-future events remain (more than a full cycle ahead): direct
	// scan of the occupied buckets for the global minimum. Needing it means
	// the width is too narrow for the pending spread — the whole calendar
	// "year" passed without an event — so recalibrate before the next
	// extraction. (A spread the width estimate cannot change, e.g. all
	// events simultaneous, keeps the old width and this stays a plain scan.)
	c.recal = true
	bestB := -1
	var bestT float64
	for wi, w := range c.occ {
		for w != 0 {
			b := wi<<6 + bits.TrailingZeros64(w)
			w &= w - 1
			for _, ev := range c.buckets[b] {
				if bestB < 0 || ev.time < bestT {
					bestB, bestT = b, ev.time
				}
			}
		}
	}
	return bestB, bestT
}

// resize rebuilds the calendar with nb buckets and a freshly estimated
// width. Resizes are rare (occupancy doublings and width recalibrations),
// so the allocation here does not affect steady-state stepping.
func (c *calendar) resize(nb int) {
	old := c.buckets
	c.width = c.estimateWidth()
	c.buckets = make([][]*Event, nb)
	c.occ = make([]uint64, nb/64)
	c.mask = nb - 1
	for _, bkt := range old {
		for _, ev := range bkt {
			vb := int64(ev.time / c.width)
			ev.vb = vb
			p := int(vb) & c.mask
			c.buckets[p] = append(c.buckets[p], ev)
			c.occ[p>>6] |= 1 << (p & 63)
		}
	}
}

// estimateWidth picks the bucket width from the pending events: twice the
// median positive gap between up to 64 sampled event times, aiming for a
// couple of events per virtual bucket near the head. Sampling order is the
// bucket order — deterministic for a deterministic operation sequence.
func (c *calendar) estimateWidth() float64 {
	ts := c.scratch[:0]
sample:
	for _, bkt := range c.buckets {
		for _, ev := range bkt {
			ts = append(ts, ev.time)
			if len(ts) == 64 {
				break sample
			}
		}
	}
	c.scratch = ts
	if len(ts) < 2 {
		return c.width
	}
	sort.Float64s(ts)
	g := 0
	for i := 1; i < len(ts); i++ {
		if d := ts[i] - ts[i-1]; d > 0 {
			ts[g] = d
			g++
		}
	}
	if g == 0 {
		return c.width // all pending events are simultaneous
	}
	sort.Float64s(ts[:g])
	w := 2 * ts[g/2]
	// Clamp: a denormal-tiny width would overflow the int64 virtual bucket
	// number for large simulated times.
	if w < 1e-9 {
		w = 1e-9
	}
	return w
}
